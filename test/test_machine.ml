(* Tests for the ISA assembler and the instruction-set simulator, including
   netlist-backed execution and fault visibility through the pipeline. *)


let test_assemble_labels () =
  let p =
    Isa.assemble
      [ Isa.Li (1, 5); Isa.Label "loop"; Isa.Alui (Alu.Sub, 1, 1, 1); Isa.Bne (1, 0, "loop");
        Isa.Ecall 0 ]
  in
  Alcotest.(check int) "length excludes labels" 4 (Isa.length p);
  Alcotest.(check int) "label resolves" 1 (Isa.label_address p "loop")

let test_assemble_validation () =
  let expect_invalid name instrs =
    match Isa.assemble instrs with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "bad register" [ Isa.Li (32, 0) ];
  expect_invalid "undefined label" [ Isa.Beq (0, 0, "nowhere") ];
  expect_invalid "duplicate label" [ Isa.Label "a"; Isa.Label "a" ];
  expect_invalid "Fop with comparison" [ Isa.Fop (Fpu_format.Feq, 0, 1, 2) ];
  expect_invalid "Fcmp with arithmetic" [ Isa.Fcmp (Fpu_format.Fadd, 0, 1, 2) ]

let test_asm_text () =
  let p = Isa.assemble [ Isa.Label "main"; Isa.Li (1, 3); Isa.Ecall 0 ] in
  let text = Isa.to_asm_text p in
  Alcotest.(check bool) "mentions label and li" true
    (String.length text > 0
    &&
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    contains "main:" text && contains "li x1, 3" text)

let functional () = Machine.create ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional ()

let run_prog m instrs =
  Machine.reset m;
  Machine.run m (Isa.assemble instrs)

let check_outcome = Alcotest.(check (of_pp Machine.pp_outcome))

let test_arith_program () =
  let m = functional () in
  let out =
    run_prog m
      [
        Isa.Li (1, 20);
        Isa.Li (2, 22);
        Isa.Alu (Alu.Add, 3, 1, 2);
        Isa.Alui (Alu.Sll, 4, 3, 2);
        Isa.Ecall 0;
      ]
  in
  check_outcome "exits" (Machine.Exited 0) out;
  Alcotest.(check int) "add" 42 (Bitvec.to_int (Machine.reg m 3));
  Alcotest.(check int) "slli" 168 (Bitvec.to_int (Machine.reg m 4))

let test_x0_hardwired () =
  let m = functional () in
  let _ = run_prog m [ Isa.Li (0, 99); Isa.Ecall 0 ] in
  Alcotest.(check int) "x0 stays zero" 0 (Bitvec.to_int (Machine.reg m 0))

let test_loop_and_branches () =
  (* sum 1..10 *)
  let m = functional () in
  let out =
    run_prog m
      [
        Isa.Li (1, 10);
        Isa.Li (2, 0);
        Isa.Label "loop";
        Isa.Alu (Alu.Add, 2, 2, 1);
        Isa.Alui (Alu.Sub, 1, 1, 1);
        Isa.Bne (1, 0, "loop");
        Isa.Ecall 0;
      ]
  in
  check_outcome "exits" (Machine.Exited 0) out;
  Alcotest.(check int) "sum" 55 (Bitvec.to_int (Machine.reg m 2));
  Alcotest.(check bool) "cycles counted" true (Machine.cycles m > 30)

let test_memory () =
  let m = functional () in
  let _ =
    run_prog m
      [
        Isa.Li (1, 100);
        Isa.Li (2, 1234);
        Isa.Sw (2, 1, 4);
        Isa.Lw (3, 1, 4);
        Isa.Ecall 0;
      ]
  in
  Alcotest.(check int) "load returns store" 1234 (Bitvec.to_int (Machine.reg m 3));
  Alcotest.(check int) "memory content" 1234 (Bitvec.to_int (Machine.mem m 104))

let test_jal_jalr () =
  let m = functional () in
  let out =
    run_prog m
      [
        Isa.Jal (1, "sub");  (* index 0 *)
        Isa.Li (2, 7);  (* return lands here: index 1 *)
        Isa.Ecall 0;  (* 2 *)
        Isa.Label "sub";
        Isa.Li (3, 5);  (* 3 *)
        Isa.Jalr (0, 1);  (* 4 *)
      ]
  in
  check_outcome "exits" (Machine.Exited 0) out;
  Alcotest.(check int) "sub ran" 5 (Bitvec.to_int (Machine.reg m 3));
  Alcotest.(check int) "returned" 7 (Bitvec.to_int (Machine.reg m 2))

let test_fp_program () =
  let m = functional () in
  let f = Fpu_format.binary16 in
  let a = Bitvec.to_int (Fpu_format.of_float f 1.5) in
  let b = Bitvec.to_int (Fpu_format.of_float f 2.25) in
  let out =
    run_prog m
      [
        Isa.Li (1, a);
        Isa.Li (2, b);
        Isa.Fmv_wx (1, 1);
        Isa.Fmv_wx (2, 2);
        Isa.Fop (Fpu_format.Fadd, 3, 1, 2);
        Isa.Fcmp (Fpu_format.Flt, 4, 1, 2);
        Isa.Fmv_xw (5, 3);
        Isa.Ecall 0;
      ]
  in
  check_outcome "exits" (Machine.Exited 0) out;
  Alcotest.(check (float 1e-6)) "fadd" 3.75
    (Fpu_format.to_float f (Machine.freg m 3));
  Alcotest.(check int) "flt" 1 (Bitvec.to_int (Machine.reg m 4))

let test_fflags_sticky () =
  let m = functional () in
  let f = Fpu_format.binary16 in
  let nan = Bitvec.to_int (Fpu_format.qnan f) in
  let _ =
    run_prog m
      [
        Isa.Li (1, nan);
        Isa.Fmv_wx (1, 1);
        Isa.Fcmp (Fpu_format.Flt, 2, 1, 1);
        Isa.Csr_fflags 3;
        Isa.Csr_fflags 4;
        Isa.Ecall 0;
      ]
  in
  Alcotest.(check int) "invalid flag read" 1 (Bitvec.to_int (Machine.reg m 3));
  Alcotest.(check int) "flags cleared" 0 (Bitvec.to_int (Machine.reg m 4))

let test_op_stats () =
  let m = functional () in
  let _ =
    run_prog m
      [
        Isa.Li (1, 3);
        Isa.Li (2, 4);
        Isa.Alu (Alu.Add, 3, 1, 2);
        Isa.Alu (Alu.Add, 3, 3, 1);
        Isa.Alu (Alu.Xor_op, 4, 3, 2);
        Isa.Sw (3, 0, 50);
        Isa.Lw (5, 0, 50);
        Isa.Beq (1, 2, "skip");
        Isa.Beq (1, 1, "skip");
        Isa.Label "skip";
        Isa.Fmv_wx (0, 1);
        Isa.Ecall 0;
      ]
  in
  let s = Machine.op_stats m in
  Alcotest.(check int) "adds" 2 (List.assoc Alu.Add s.Machine.alu_ops);
  Alcotest.(check int) "xors" 1 (List.assoc Alu.Xor_op s.Machine.alu_ops);
  Alcotest.(check int) "loads" 1 s.Machine.loads;
  Alcotest.(check int) "stores" 1 s.Machine.stores;
  Alcotest.(check int) "branches" 2 s.Machine.branches;
  Alcotest.(check int) "taken" 1 s.Machine.branches_taken;
  Alcotest.(check int) "moves" 1 s.Machine.moves;
  Alcotest.(check bool) "no fpu arith" true (s.Machine.fpu_ops = [])

let test_out_of_fuel () =
  let m = functional () in
  Machine.reset m;
  let p = Isa.assemble [ Isa.Label "spin"; Isa.Jal (0, "spin") ] in
  check_outcome "out of fuel" Machine.Out_of_fuel (Machine.run ~max_instructions:100 m p)

(* --- netlist-backed execution --- *)

let alu16 = Alu.netlist ~width:16 ()
let fpu16 = Fpu.netlist ()

let netlist_machine () =
  Machine.create ~alu:(Machine.Alu_netlist alu16) ~fpu:(Machine.Fpu_netlist fpu16) ()

let compiled_machine () =
  Machine.create ~unit_engine:Machine.Compiled_unit ~alu:(Machine.Alu_netlist alu16)
    ~fpu:(Machine.Fpu_netlist fpu16) ()

let test_netlist_backend_agrees () =
  let mf = functional () and mn = netlist_machine () in
  let prog =
    [
      Isa.Li (1, 123);
      Isa.Li (2, 45);
      Isa.Alu (Alu.Add, 3, 1, 2);
      Isa.Alu (Alu.Sub, 4, 1, 2);
      Isa.Alu (Alu.Xor_op, 5, 3, 4);
      Isa.Alu (Alu.Sltu, 6, 2, 1);
      Isa.Alui (Alu.Sra, 7, 1, 2);
      Isa.Fmv_wx (1, 1);
      Isa.Fmv_wx (2, 2);
      Isa.Fop (Fpu_format.Fmul, 3, 1, 2);
      Isa.Fmv_xw (8, 3);
      Isa.Ecall 0;
    ]
  in
  let o1 = run_prog mf prog and o2 = run_prog mn prog in
  check_outcome "both exit" o1 o2;
  for r = 1 to 8 do
    Alcotest.(check int)
      (Printf.sprintf "x%d agrees" r)
      (Bitvec.to_int (Machine.reg mf r))
      (Bitvec.to_int (Machine.reg mn r))
  done

let test_netlist_back_to_back_dependent () =
  (* dependent chain exercises the pipeline interlock *)
  let mn = netlist_machine () in
  let out =
    run_prog mn
      [
        Isa.Li (1, 1);
        Isa.Alu (Alu.Add, 2, 1, 1);
        Isa.Alu (Alu.Add, 3, 2, 2);
        Isa.Alu (Alu.Add, 4, 3, 3);
        Isa.Alu (Alu.Add, 5, 4, 4);
        Isa.Ecall 0;
      ]
  in
  check_outcome "exits" (Machine.Exited 0) out;
  Alcotest.(check int) "chain result" 16 (Bitvec.to_int (Machine.reg mn 5))

let test_faulty_alu_detected_by_test_branch () =
  (* break a result-rank register permanently (self-evident stuck fault via
     setup model with C=1 on a frequently toggling path) and check that a
     bne-based test case detects the wrong result *)
  let spec =
    {
      Fault.start_dff = "a_q0";
      end_dff = "r_q0";
      kind = Fault.Setup_violation;
      constant = Fault.C0;
      activation = Fault.Any_transition;
    }
  in
  let faulty = Fault.failing_netlist alu16 spec in
  let m = Machine.create ~alu:(Machine.Alu_netlist faulty) ~fpu:Machine.Fpu_functional () in
  Machine.reset m;
  (* toggle a[0] across instructions, expect 0+1 = 1 but r[0] captures C=0 *)
  let prog =
    Isa.assemble
      [
        Isa.Li (1, 0);
        Isa.Li (2, 1);
        Isa.Alu (Alu.Add, 3, 1, 2);  (* a=0 *)
        Isa.Alu (Alu.Add, 4, 2, 0);  (* a=1: transition on a_q0; 1+0=1 *)
        Isa.Li (5, 1);
        Isa.Bne (4, 5, "fail");
        Isa.Ecall 0;
        Isa.Label "fail";
        Isa.Ecall 1;
      ]
  in
  check_outcome "SDC detected" (Machine.Exited 1) (Machine.run m prog)

let test_compiled_unit_agrees () =
  (* the Simc-backed unit engine must be observationally identical to the
     scalar unit engine: same outcome, same architectural state, same cycle
     count (the protocol FSM is engine-independent) *)
  let ms = netlist_machine () and mc = compiled_machine () in
  let prog =
    [
      Isa.Li (1, 123);
      Isa.Li (2, 45);
      Isa.Alu (Alu.Add, 3, 1, 2);
      Isa.Alu (Alu.Sub, 4, 1, 2);
      Isa.Alu (Alu.Xor_op, 5, 3, 4);
      Isa.Alu (Alu.Sltu, 6, 2, 1);
      Isa.Alui (Alu.Sra, 7, 1, 2);
      Isa.Fmv_wx (1, 1);
      Isa.Fmv_wx (2, 2);
      Isa.Fop (Fpu_format.Fmul, 3, 1, 2);
      Isa.Fmv_xw (8, 3);
      Isa.Ecall 0;
    ]
  in
  let o1 = run_prog ms prog and o2 = run_prog mc prog in
  check_outcome "both exit" o1 o2;
  for r = 1 to 8 do
    Alcotest.(check int)
      (Printf.sprintf "x%d agrees" r)
      (Bitvec.to_int (Machine.reg ms r))
      (Bitvec.to_int (Machine.reg mc r))
  done;
  Alcotest.(check int) "f3 agrees"
    (Bitvec.to_int (Machine.freg ms 3))
    (Bitvec.to_int (Machine.freg mc 3));
  Alcotest.(check int) "cycle count agrees" (Machine.cycles ms) (Machine.cycles mc)

let test_compiled_unit_detects_fault () =
  (* fault detection through the compiled engine: the faulty replica is
     built on the same engine as the unit it replaces *)
  let spec =
    {
      Fault.start_dff = "a_q0";
      end_dff = "r_q0";
      kind = Fault.Setup_violation;
      constant = Fault.C0;
      activation = Fault.Any_transition;
    }
  in
  let faulty = Fault.failing_netlist alu16 spec in
  let m =
    Machine.create ~unit_engine:Machine.Compiled_unit ~alu:(Machine.Alu_netlist faulty)
      ~fpu:Machine.Fpu_functional ()
  in
  Machine.reset m;
  let prog =
    Isa.assemble
      [
        Isa.Li (1, 0);
        Isa.Li (2, 1);
        Isa.Alu (Alu.Add, 3, 1, 2);
        Isa.Alu (Alu.Add, 4, 2, 0);
        Isa.Li (5, 1);
        Isa.Bne (4, 5, "fail");
        Isa.Ecall 0;
        Isa.Label "fail";
        Isa.Ecall 1;
      ]
  in
  check_outcome "SDC detected on compiled engine" (Machine.Exited 1) (Machine.run m prog)

let test_fpu_stall_watchdog () =
  (* kill the valid token: v_out captures 0 whenever v_q transitions *)
  let spec =
    {
      Fault.start_dff = "v_q";
      end_dff = "v_out";
      kind = Fault.Setup_violation;
      constant = Fault.C0;
      activation = Fault.Any_transition;
    }
  in
  let faulty = Fault.failing_netlist fpu16 spec in
  let m = Machine.create ~alu:Machine.Alu_functional ~fpu:(Machine.Fpu_netlist faulty) () in
  Machine.reset m;
  let prog =
    Isa.assemble
      [ Isa.Fop (Fpu_format.Fadd, 3, 1, 2); Isa.Fmv_xw (4, 3); Isa.Ecall 0 ]
  in
  check_outcome "stall detected" Machine.Stalled (Machine.run m prog)

(* Property: random straight-line ALU programs give identical register
   files on functional and netlist backends. *)
let prop_backends_agree =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"functional and netlist backends agree"
       (QCheck.make ~print:(fun l -> String.concat ";" (List.map string_of_int l))
          QCheck.Gen.(list_size (int_range 1 15) (int_bound 10_000)))
       (fun seeds ->
         let mf = functional () and mn = netlist_machine () in
         let rng = Random.State.make (Array.of_list seeds) in
         let instrs =
           List.concat_map
             (fun _ ->
               let op = List.nth Alu.all_ops (Random.State.int rng 10) in
               let rd = 1 + Random.State.int rng 15 in
               let r1 = Random.State.int rng 16 and r2 = Random.State.int rng 16 in
               if Random.State.bool rng then [ Isa.Alu (op, rd, r1, r2) ]
               else [ Isa.Li (rd, Random.State.int rng 65536); Isa.Alu (op, rd, rd, r1) ])
             seeds
           @ [ Isa.Ecall 0 ]
         in
         let o1 = run_prog mf instrs and o2 = run_prog mn instrs in
         o1 = o2
         && List.for_all
              (fun r -> Bitvec.equal (Machine.reg mf r) (Machine.reg mn r))
              (List.init 16 (fun i -> i))))

(* Property: random straight-line ALU programs give identical register
   files and cycle counts on the scalar and compiled unit engines. *)
let prop_unit_engines_agree =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"scalar and compiled unit engines agree"
       (QCheck.make ~print:(fun l -> String.concat ";" (List.map string_of_int l))
          QCheck.Gen.(list_size (int_range 1 15) (int_bound 10_000)))
       (fun seeds ->
         let ms = netlist_machine () and mc = compiled_machine () in
         let rng = Random.State.make (Array.of_list seeds) in
         let instrs =
           List.concat_map
             (fun _ ->
               let op = List.nth Alu.all_ops (Random.State.int rng 10) in
               let rd = 1 + Random.State.int rng 15 in
               let r1 = Random.State.int rng 16 and r2 = Random.State.int rng 16 in
               if Random.State.bool rng then [ Isa.Alu (op, rd, r1, r2) ]
               else [ Isa.Li (rd, Random.State.int rng 65536); Isa.Alu (op, rd, rd, r1) ])
             seeds
           @ [ Isa.Ecall 0 ]
         in
         let o1 = run_prog ms instrs and o2 = run_prog mc instrs in
         o1 = o2
         && Machine.cycles ms = Machine.cycles mc
         && List.for_all
              (fun r -> Bitvec.equal (Machine.reg ms r) (Machine.reg mc r))
              (List.init 16 (fun i -> i))))

(* Property: pausing mid-run, snapshotting, and restoring is exact — the
   completion reached after [restore] is bit-identical (outcome, registers,
   fp registers, memory, cycle count) to the one reached directly. *)
let prop_snapshot_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"snapshot/restore roundtrip is exact"
       (QCheck.make ~print:(fun l -> String.concat ";" (List.map string_of_int l))
          QCheck.Gen.(list_size (int_range 2 12) (int_bound 10_000)))
       (fun seeds ->
         let m = netlist_machine () in
         let rng = Random.State.make (Array.of_list seeds) in
         let instrs =
           List.concat_map
             (fun _ ->
               let op = List.nth Alu.all_ops (Random.State.int rng 10) in
               let rd = 1 + Random.State.int rng 15 in
               let r1 = Random.State.int rng 16 and r2 = Random.State.int rng 16 in
               [
                 Isa.Li (rd, Random.State.int rng 65536);
                 Isa.Alu (op, rd, rd, r1);
                 Isa.Sw (rd, 0, 4 * (1 + Random.State.int rng 8));
                 Isa.Alu (Alu.Add, r2 land 15, rd, r1);
               ])
             seeds
           @ [ Isa.Ecall 0 ]
         in
         let prog = Isa.assemble instrs in
         Machine.reset m;
         let budget = 1 + Random.State.int rng (Isa.length prog - 1) in
         match Machine.run_slice ~pc:0 ~budget m prog with
         | Machine.Completed _ -> QCheck.assume_fail ()  (* paused nowhere; trivial *)
         | Machine.Paused pc ->
           let snap = Machine.snapshot m in
           let observe () =
             let o =
               match Machine.run_slice ~pc ~budget:100_000 m prog with
               | Machine.Completed o -> o
               | Machine.Paused _ -> Machine.Out_of_fuel
             in
             ( o,
               List.init 16 (fun r -> Bitvec.to_int (Machine.reg m r)),
               List.init 16 (fun r -> Bitvec.to_int (Machine.freg m r)),
               List.init 16 (fun a -> Bitvec.to_int (Machine.mem m (4 * a))),
               Machine.cycles m,
               Machine.instructions_retired m )
           in
           let direct = observe () in
           Machine.restore m snap;
           let replayed = observe () in
           direct = replayed))

let () =
  Alcotest.run "machine"
    [
      ( "assembler",
        [
          Alcotest.test_case "labels" `Quick test_assemble_labels;
          Alcotest.test_case "validation" `Quick test_assemble_validation;
          Alcotest.test_case "asm text" `Quick test_asm_text;
        ] );
      ( "functional",
        [
          Alcotest.test_case "arith" `Quick test_arith_program;
          Alcotest.test_case "x0" `Quick test_x0_hardwired;
          Alcotest.test_case "loops" `Quick test_loop_and_branches;
          Alcotest.test_case "memory" `Quick test_memory;
          Alcotest.test_case "jal/jalr" `Quick test_jal_jalr;
          Alcotest.test_case "fp" `Quick test_fp_program;
          Alcotest.test_case "fflags" `Quick test_fflags_sticky;
          Alcotest.test_case "op stats" `Quick test_op_stats;
          Alcotest.test_case "out of fuel" `Quick test_out_of_fuel;
        ] );
      ( "netlist backends",
        [
          Alcotest.test_case "agreement" `Quick test_netlist_backend_agrees;
          Alcotest.test_case "dependent chain" `Quick test_netlist_back_to_back_dependent;
          Alcotest.test_case "fault detection" `Quick test_faulty_alu_detected_by_test_branch;
          Alcotest.test_case "fpu stall watchdog" `Quick test_fpu_stall_watchdog;
          Alcotest.test_case "compiled unit agreement" `Quick test_compiled_unit_agrees;
          Alcotest.test_case "compiled unit fault detection" `Quick
            test_compiled_unit_detects_fault;
        ] );
      ("properties", [ prop_backends_agree; prop_unit_engines_agree; prop_snapshot_roundtrip ]);
    ]
