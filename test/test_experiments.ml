(* Smoke tests for the experiment drivers, on the reduced configuration:
   every table/figure driver runs and its rows have the expected shape. *)

let ctx = Experiments.make_context ~config:Experiments.quick_config ()

let test_fig8 () =
  let buckets = Experiments.fig8 ctx in
  let total_alu = List.fold_left (fun a b -> a +. b.Experiments.alu_frac) 0.0 buckets in
  let total_fpu = List.fold_left (fun a b -> a +. b.Experiments.fpu_frac) 0.0 buckets in
  Alcotest.(check (float 0.02)) "alu fractions sum to 1" 1.0 total_alu;
  Alcotest.(check (float 0.02)) "fpu fractions sum to 1" 1.0 total_fpu;
  Alcotest.(check bool) "renders" true
    (String.length (Experiments.render_fig8 buckets) > 100)

let test_table3 () =
  let rows = Experiments.table3 ctx in
  Alcotest.(check int) "two units" 2 (List.length rows);
  let alu = List.find (fun r -> r.Experiments.t3_unit = "ALU") rows in
  let fpu = List.find (fun r -> r.Experiments.t3_unit = "FPU") rows in
  Alcotest.(check bool) "alu setup violations" true (alu.Experiments.setup_paths > 0);
  Alcotest.(check bool) "alu wns negative" true (alu.Experiments.setup_wns_ps < 0.0);
  Alcotest.(check bool) "fpu has far more paths than alu" true
    (fpu.Experiments.setup_paths > 10 * alu.Experiments.setup_paths);
  Alcotest.(check bool) "fpu hold violation" true (fpu.Experiments.hold_paths >= 1);
  Alcotest.(check int) "alu no hold" 0 alu.Experiments.hold_paths

let test_table4 () =
  let rows = Experiments.table4 ctx in
  List.iter
    (fun r ->
      let sum = List.fold_left (fun a (_, p) -> a +. p) 0.0 r.Experiments.without in
      Alcotest.(check (float 0.1)) (r.Experiments.t4_unit ^ " percentages sum to 100") 100.0 sum)
    rows

let test_table5 () =
  let rows = Experiments.table5 ctx in
  List.iter
    (fun r ->
      Alcotest.(check bool) "cases positive" true (r.Experiments.cases_without > 0);
      (* the headline claim: suites execute in hundreds to thousands of cycles *)
      Alcotest.(check bool) "cycles in the low thousands" true
        (r.Experiments.cycles_without > 0 && r.Experiments.cycles_with < 5000);
      Alcotest.(check bool) "mitigation grows the suite" true
        (r.Experiments.cases_with >= r.Experiments.cases_without))
    rows

let test_table6 () =
  let rows = Experiments.table6 ctx in
  Alcotest.(check int) "12 rows (2 units x 3 FMs x 2 suites)" 12 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "high detection" true (r.Experiments.detected_pct >= 80.0);
      Alcotest.(check bool) "percentages bounded" true
        (r.Experiments.before_pct <= 100.0 && r.Experiments.stall_pct <= 100.0))
    rows

let test_table7 () =
  let rows = Experiments.table7 ctx in
  Alcotest.(check int) "6 rows" 6 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "vega detects most" true (r.Experiments.vega_pct >= 80.0);
      Alcotest.(check bool) "random below or equal overall ALU C0" true
        (r.Experiments.random_pct <= 100.0))
    rows;
  (* the paper's headline comparison: Vega never loses to random on C=0 *)
  let alu_c0 =
    List.find
      (fun r -> r.Experiments.t7_unit = "ALU" && r.Experiments.t7_fm = Experiments.FM0)
      rows
  in
  Alcotest.(check bool) "vega >= random on ALU C0" true
    (alu_c0.Experiments.vega_pct >= alu_c0.Experiments.random_pct)

let test_fig9 () =
  let rows = Experiments.fig9 ctx in
  Alcotest.(check int) "all benchmarks" (List.length Workload.all) (List.length rows);
  let mean_n, mean_m = Experiments.fig9_mean_overheads rows in
  Alcotest.(check bool) "mean overhead small" true (mean_n < 5.0 && mean_m < 5.0);
  List.iter
    (fun r ->
      Alcotest.(check bool) "overhead nonnegative" true
        (r.Experiments.overhead_without_pct >= 0.0))
    rows

(* ---- adversarial wearout campaign ---- *)

let quick_attack = Experiments.quick_attack_campaign

(* The campaign is the expensive fixture; run it once and share it. *)
let attack_report = lazy (Experiments.attack_campaign ~config:quick_attack ())

let test_attack_campaign () =
  let report = Lazy.force attack_report in
  (* the headline: the attacked corner violates strictly earlier *)
  (match (report.Experiments.ap_ttv_attack, report.Experiments.ap_acceleration) with
  | None, _ -> Alcotest.fail "attack corner never reaches a violating corner"
  | Some _, Some a -> Alcotest.(check bool) "acceleration factor > 1" true (a > 1.0)
  | Some _, None -> () (* nominal clean at the horizon: unbounded acceleration *));
  Alcotest.(check bool) "attacked duty above baseline" true
    (report.Experiments.ap_attacked_obj >= report.Experiments.ap_baseline_obj);
  Alcotest.(check bool) "canaries inserted" true (report.Experiments.ap_canaries <> []);
  let s = Experiments.attack_summary report.Experiments.ap_rows in
  Alcotest.(check bool) "one row per mode and pair" true
    (s.Experiments.as_unguarded_rows >= 1
    && s.Experiments.as_sw_rows = s.Experiments.as_unguarded_rows
    && s.Experiments.as_canary_rows = s.Experiments.as_unguarded_rows);
  Alcotest.(check int) "every canary-guarded run detects" s.Experiments.as_canary_rows
    s.Experiments.as_canary_detected;
  Alcotest.(check int) "no canary-guarded escape" 0 s.Experiments.as_canary_escapes;
  (* the second channel: at equal overhead budget, never slower than the
     software-only schedule on any measured pair *)
  Alcotest.(check bool) "latency measured on at least one pair" true
    (s.Experiments.as_latency_pairs >= 1);
  Alcotest.(check int) "canary latency <= software latency on every pair"
    s.Experiments.as_latency_pairs s.Experiments.as_canary_wins

let test_attack_campaign_deterministic () =
  let r1 = Lazy.force attack_report in
  let r2 = Experiments.attack_campaign ~config:quick_attack () in
  Alcotest.(check string) "renders identically"
    (Experiments.render_attack_campaign r1)
    (Experiments.render_attack_campaign r2)

let test_attack_digest () =
  let d = Experiments.attack_campaign_digest in
  let base = quick_attack in
  Alcotest.(check string) "digest is stable" (d base) (d base);
  let differs label config =
    Alcotest.(check bool) label true (d base <> d config)
  in
  differs "search seed changes digest"
    {
      base with
      Experiments.ak_attack = { base.Experiments.ak_attack with Attack.atk_seed = 1 };
    };
  differs "target-cell set changes digest" { base with Experiments.ak_cells = [ "_mux2_1" ] };
  differs "corner horizon changes digest" { base with Experiments.ak_years_max = 20.0 };
  differs "canary guardband changes digest" { base with Experiments.ak_canary_pessimism = 1.5 };
  differs "poll cadence changes digest" { base with Experiments.ak_canary_poll = 10 }

let fresh_dir () =
  let f = Filename.temp_file "vega-attack-campaign" "" in
  Sys.remove f;
  f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let test_attack_campaign_resume () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let digest = Experiments.attack_campaign_digest quick_attack in
      let open_ck resume =
        match Resilience.Checkpoint.open_dir ~resume ~dir ~digest () with
        | Ok ck -> ck
        | Error msg -> Alcotest.failf "checkpoint open failed: %s" msg
      in
      let r1 = Experiments.attack_campaign ~config:quick_attack ~checkpoint:(open_ck false) () in
      (* a resumed run restores every item and reports identically *)
      let r2 = Experiments.attack_campaign ~config:quick_attack ~checkpoint:(open_ck true) () in
      Alcotest.(check string) "resumed render identical"
        (Experiments.render_attack_campaign r1)
        (Experiments.render_attack_campaign r2);
      (* a mismatched configuration must be refused as stale *)
      let stale =
        Experiments.attack_campaign_digest { quick_attack with Experiments.ak_canary_poll = 10 }
      in
      match Resilience.Checkpoint.open_dir ~resume:true ~dir ~digest:stale () with
      | Ok _ -> Alcotest.fail "stale attack-campaign checkpoint accepted"
      | Error _ -> ())

let () =
  Alcotest.run "experiments"
    [
      ( "drivers",
        [
          Alcotest.test_case "fig8" `Quick test_fig8;
          Alcotest.test_case "table3" `Quick test_table3;
          Alcotest.test_case "table4" `Quick test_table4;
          Alcotest.test_case "table5" `Quick test_table5;
          Alcotest.test_case "table6" `Quick test_table6;
          Alcotest.test_case "table7" `Quick test_table7;
          Alcotest.test_case "fig9" `Quick test_fig9;
        ] );
      ( "attack campaign",
        [
          Alcotest.test_case "acceleration and canary channel" `Quick test_attack_campaign;
          Alcotest.test_case "deterministic" `Quick test_attack_campaign_deterministic;
          Alcotest.test_case "digest commits to cells, seed, corner" `Quick test_attack_digest;
          Alcotest.test_case "checkpoint resume and staleness" `Quick test_attack_campaign_resume;
        ] );
    ]
