(* Tests for the VCD waveform exporter and trace-to-VCD. *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let bv w v = Bitvec.create ~width:w v

let test_basic_dump () =
  let t = Vcd.create ~timescale:"1ns" ~design:"demo" () in
  let clk = Vcd.add_signal t "clk" in
  let bus = Vcd.add_signal t ~width:4 "data" in
  Vcd.set_bit t clk false;
  Vcd.set t bus (bv 4 0);
  Vcd.advance t 1;
  Vcd.set_bit t clk true;
  Vcd.set t bus (bv 4 5);
  Vcd.advance t 1;
  (* both signals unchanged: the #2 timestamp must not be emitted at all *)
  Vcd.set_bit t clk true;
  Vcd.set t bus (bv 4 5);
  let s = Vcd.to_string t in
  Alcotest.(check bool) "header" true (contains "$timescale 1ns $end" s);
  Alcotest.(check bool) "scope" true (contains "$scope module demo $end" s);
  Alcotest.(check bool) "var clk" true (contains "$var wire 1 ! clk $end" s);
  Alcotest.(check bool) "var bus" true (contains "$var wire 4 \" data [3:0] $end" s);
  Alcotest.(check bool) "time 0" true (contains "#0" s);
  Alcotest.(check bool) "time 1" true (contains "#1" s);
  Alcotest.(check bool) "vector value" true (contains "b0101 \"" s);
  (* the unchanged value at #2 must not re-emit #2 at all *)
  Alcotest.(check bool) "no redundant #2" false (contains "#2" s)

let test_validation () =
  let t = Vcd.create () in
  let a = Vcd.add_signal t "a" in
  ignore a;
  Alcotest.check_raises "duplicate name" (Invalid_argument "Vcd.add_signal: duplicate signal a")
    (fun () -> ignore (Vcd.add_signal t "a"));
  Vcd.set_bit t a true;
  (match Vcd.add_signal t "late" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "late declaration accepted");
  Alcotest.check_raises "bad advance" (Invalid_argument "Vcd.advance: need a positive increment")
    (fun () -> Vcd.advance t 0)

let test_identifiers_unique () =
  let t = Vcd.create () in
  let sigs = List.init 200 (fun i -> Vcd.add_signal t (Printf.sprintf "s%d" i)) in
  List.iter (fun s -> Vcd.set_bit t s true) sigs;
  let out = Vcd.to_string t in
  (* 200 signals all declared *)
  Alcotest.(check int) "all declared" 200
    (List.length
       (String.split_on_char '\n' out |> List.filter (fun l -> contains "$var wire 1" l)))

let test_of_sim_run () =
  let nl = Example_circuits.pipelined_adder () in
  let sim = Sim.create nl in
  let out =
    Vcd.of_sim_run sim ~cycles:4 ~stimulus:(fun c ->
        [ ("a", bv 2 (c land 3)); ("b", bv 2 1) ])
  in
  Alcotest.(check bool) "declares ports" true
    (contains "a [1:0]" out && contains "b [1:0]" out && contains "o [1:0]" out);
  Alcotest.(check bool) "four timesteps" true (contains "#3" out)

(* Byte-for-byte regression against a committed snapshot: any change to the
   VCD text format (or to the simulator's visible behavior on the pipelined
   adder) must show up as a deliberate golden-file update. *)
let golden_path name =
  (* dune runs tests from _build/default/test; `dune exec` from the root *)
  if Sys.file_exists (Filename.concat "golden" name) then Filename.concat "golden" name
  else Filename.concat (Filename.concat "test" "golden") name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_pipelined_adder () =
  let nl = Example_circuits.pipelined_adder () in
  let sim = Sim.create nl in
  let out =
    Vcd.of_sim_run sim ~cycles:6 ~stimulus:(fun c ->
        [ ("a", bv 2 (c land 3)); ("b", bv 2 ((c * 2 + 1) land 3)) ])
  in
  let expected = read_file (golden_path "pipelined_adder.vcd") in
  Alcotest.(check string) "byte-for-byte vs golden/pipelined_adder.vcd" expected out

let test_trace_to_vcd () =
  let nl = Example_circuits.pipelined_adder () in
  let inst =
    Fault.instrument_shadow nl
      {
        Fault.start_dff = "$4";
        end_dff = "$10";
        kind = Fault.Setup_violation;
        constant = Fault.C1;
        activation = Fault.Any_transition;
      }
  in
  match
    Formal.check_cover ~watch:inst.Fault.watch inst.Fault.netlist ~cover:inst.Fault.cover
  with
  | Formal.Trace_found t ->
    let vcd = Formal.Trace.to_vcd inst.Fault.netlist t in
    Alcotest.(check bool) "has inputs" true (contains "a [1:0]" vcd);
    Alcotest.(check bool) "has shadow port" true (contains "o_s" vcd);
    Alcotest.(check bool) "has watched nets" true (contains "$10.Q_s" vcd);
    Alcotest.(check bool) "enddefinitions" true (contains "$enddefinitions" vcd)
  | _ -> Alcotest.fail "no trace"

let () =
  Alcotest.run "vcd"
    [
      ( "vcd",
        [
          Alcotest.test_case "basic dump" `Quick test_basic_dump;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "identifier uniqueness" `Quick test_identifiers_unique;
          Alcotest.test_case "of_sim_run" `Quick test_of_sim_run;
          Alcotest.test_case "golden pipelined adder" `Quick test_golden_pipelined_adder;
          Alcotest.test_case "formal trace to vcd" `Quick test_trace_to_vcd;
        ] );
    ]
