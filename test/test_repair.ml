(* Property-test hardening for the aging-aware repair pass: on random
   sequential netlists every committed exact rewrite chain must leave the
   design CEC-equivalent, lint-clean and never worse on any repaired
   pair, under budget, and byte-identically reproducible; approximate
   repair must respect its declared error bound under independent
   64-lane random stimulus.  Plus the three-engine differential on the
   repaired ALU8/FPU16 netlists (bit-identical across Sim, Sim64 and
   Simc, golden-VCD byte-equality) and the byte-exact golden CLI
   report. *)

module B = Netlist.Builder

let bv w v = Bitvec.create ~width:w v
let c28 = Cell.Library.c28
let aglib = Aging.Timing_library.build c28
let tree = Clock_tree.two_domain_gated ~sp_gated:0.05 ()
let years = 10.0
let derate = 1.0

(* Deterministic pseudo-random SP per net: the profile stand-in.  Keeps
   every run of a given netlist identical without a simulation pass. *)
let sp_of_net n = 0.1 +. (0.8 *. float_of_int (n * 2654435761 land 1023) /. 1023.0)

let comb_kinds =
  [|
    Cell.Kind.Buf;
    Cell.Kind.Not;
    Cell.Kind.And2;
    Cell.Kind.Or2;
    Cell.Kind.Xor2;
    Cell.Kind.Nand2;
    Cell.Kind.Nor2;
    Cell.Kind.Xnor2;
    Cell.Kind.Mux2;
  |]

(* Random sequential netlist: input ports, a mixed comb/DFF soup, an
   observed register chain (so DFF-to-DFF pairs exist), and guaranteed
   dead logic the final sweep must remove. *)
let build_random_netlist rng =
  let b = B.create "rand" in
  let pool = ref [] in
  let n_ports = 1 + Random.State.int rng 3 in
  for i = 0 to n_ports - 1 do
    let w = 1 + Random.State.int rng 4 in
    pool := Array.to_list (B.add_input b (Printf.sprintf "in%d" i) w) @ !pool
  done;
  let pick () =
    let a = Array.of_list !pool in
    a.(Random.State.int rng (Array.length a))
  in
  let n_cells = 8 + Random.State.int rng 32 in
  for _ = 1 to n_cells do
    let out =
      if Random.State.int rng 4 = 0 then
        B.add_cell ~clock_domain:0 ~reset_value:(Random.State.bool rng) b Cell.Kind.Dff
          [| pick () |]
      else begin
        let k = comb_kinds.(Random.State.int rng (Array.length comb_kinds)) in
        B.add_cell b k (Array.init (Cell.Kind.arity k) (fun _ -> pick ()))
      end
    in
    pool := out :: !pool
  done;
  let chain = ref (pick ()) in
  for _ = 1 to 2 + Random.State.int rng 3 do
    chain :=
      B.add_cell ~clock_domain:0 ~reset_value:(Random.State.bool rng) b Cell.Kind.Dff
        [| !chain |]
  done;
  let n_out = 1 + Random.State.int rng 2 in
  for i = 0 to n_out - 1 do
    let w = 1 + Random.State.int rng 3 in
    B.add_output b (Printf.sprintf "out%d" i) (Array.init w (fun _ -> pick ()))
  done;
  B.add_output b "chain" [| !chain |];
  (* dead: reaches no output and no D pin *)
  let d1 = B.add_cell b Cell.Kind.Xor2 [| pick (); pick () |] in
  let _d2 = B.add_cell b Cell.Kind.Not [| d1 |] in
  B.finish b

(* Clock closed exactly at the fresh critical path (margin 1.0): every
   aged max-depth endpoint violates, so most random netlists hand the
   repair pass real work. *)
let close_clock nl =
  let timing = Sta.fresh_timing ~derate ~clock_tree:tree c28 in
  let r = Sta.analyze ~timing ~clock_period_ps:1e9 nl in
  List.fold_left
    (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
    0.0 r.Sta.endpoint_slacks

let aged_timing = Sta.aged_timing ~derate ~clock_tree:tree ~sp_of_net ~years aglib

let run_repair ?(config = Repair.default_config) nl =
  let clock_period_ps = close_clock nl in
  let pairs = Sta.violating_pairs ~timing:aged_timing ~clock_period_ps nl in
  ( Repair.run ~config ~netlist:nl ~sp_of_net ~clock_period_ps ~years ~derate
      ~clock_tree:tree ~aglib ~pairs (),
    clock_period_ps,
    pairs )

let exact_config =
  {
    Repair.default_config with
    Repair.rp_max_rewrites = 8;
    rp_max_pair_edits = 4;
    rp_max_conflicts = 50_000;
    rp_max_cone = 16;
  }

let code_set nl =
  List.sort_uniq compare
    (List.map (fun d -> Check.code_id d.Check.code) (Check.lint_netlist nl))

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)

(* The workhorse property: exact-rung repair on a random netlist is
   CEC-equivalent end-to-end, lint-clean, never worse on any repaired
   pair, stays under budget, and renders byte-identically on a second
   run. *)
let prop_exact_repair =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:350 ~name:"exact repair: equivalent, clean, monotone, deterministic"
       seed_arb
       (fun seed ->
         let rng = Random.State.make [| 0xa11ce; seed |] in
         let nl = build_random_netlist rng in
         let r, _clock, _pairs = run_repair ~config:exact_config nl in
         if r.Repair.rs_rewrites > exact_config.Repair.rp_max_rewrites then
           QCheck.Test.fail_reportf "budget exceeded: %d rewrites" r.Repair.rs_rewrites;
         if r.Repair.rs_cec_failures > 0 then
           QCheck.Test.fail_reportf "%d CEC failures slipped through" r.Repair.rs_cec_failures;
         List.iter
           (fun (o : Repair.pair_outcome) ->
             if o.Repair.po_slack_after_ps < o.Repair.po_slack_before_ps -. 1e-6 then
               QCheck.Test.fail_reportf "pair %s worsened: %.3f -> %.3f ps" o.Repair.po_pair
                 o.Repair.po_slack_before_ps o.Repair.po_slack_after_ps)
           r.Repair.rs_outcomes;
         let repaired = r.Repair.rs_netlist in
         (match Check.errors (Check.lint_netlist repaired) with
         | [] -> ()
         | d :: _ ->
             QCheck.Test.fail_reportf "repaired netlist has lint error %s at %s"
               (Check.code_id d.Check.code) d.Check.loc);
         (* the final sweep may orphan an input-port bit whose only
            reader was dead logic (NL012, a warning); anything else new
            is a bug *)
         let fresh_codes =
           List.filter
             (fun c -> not (List.mem c (code_set nl)) && c <> "NL012")
             (code_set repaired)
         in
         if fresh_codes <> [] then
           QCheck.Test.fail_reportf "sweep introduced lint codes: %s"
             (String.concat "," fresh_codes);
         (match Cec.check nl repaired with
         | Cec.Equivalent -> ()
         | Cec.Inequivalent cex ->
             QCheck.Test.fail_reportf "repaired netlist inequivalent at %s" cex.Cec.cex_site
         | Cec.Unknown -> QCheck.Test.fail_reportf "end-to-end CEC inconclusive");
         let r2, _, _ = run_repair ~config:exact_config nl in
         if not (String.equal (Repair.render r) (Repair.render r2)) then
           QCheck.Test.fail_reportf "repair is not deterministic for seed %d" seed;
         true))

(* Independent 64-lane differential: drive both netlists with identical
   random stimulus and count differing output bits. *)
let measured_error_rate ~seed ~cycles a b =
  let rng = Random.State.make [| 0xd1ff; seed |] in
  let sa = Sim64.create a and sb = Sim64.create b in
  let total = ref 0 and wrong = ref 0 in
  let lane_mask =
    if Sim64.lanes >= Sys.int_size then -1 else (1 lsl Sim64.lanes) - 1
  in
  let popcount x =
    let c = ref 0 in
    let v = ref (x land lane_mask) in
    while !v <> 0 do
      v := !v land (!v - 1);
      incr c
    done;
    !c
  in
  for _ = 1 to cycles do
    List.iter
      (fun (p : Netlist.port) ->
        let w = Array.length p.Netlist.port_nets in
        for lane = 0 to Sim64.lanes - 1 do
          let v = bv w (Random.State.int rng (1 lsl w)) in
          Sim64.set_input sa ~lane p.Netlist.port_name v;
          Sim64.set_input sb ~lane p.Netlist.port_name v
        done)
      (Netlist.inputs a);
    Sim64.step sa;
    Sim64.step sb;
    List.iter
      (fun (pa : Netlist.port) ->
        let pb =
          List.find
            (fun (p : Netlist.port) -> String.equal p.Netlist.port_name pa.Netlist.port_name)
            (Netlist.outputs b)
        in
        Array.iteri
          (fun i na ->
            let wa = Sim64.net_word sa na and wb = Sim64.net_word sb pb.Netlist.port_nets.(i) in
            total := !total + Sim64.lanes;
            wrong := !wrong + popcount (wa lxor wb))
          pa.Netlist.port_nets)
      (Netlist.outputs a)
  done;
  if !total = 0 then 0.0 else float_of_int !wrong /. float_of_int !total

let approx_bound = 0.25

let approx_config =
  {
    exact_config with
    Repair.rp_rungs = [ Repair.Approx ];
    rp_approx_bound = Some approx_bound;
    rp_approx_cycles = 128;
  }

let prop_approx_bound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"approximate repair stays within the declared error bound"
       seed_arb
       (fun seed ->
         let rng = Random.State.make [| 0xbead; seed |] in
         let nl = build_random_netlist rng in
         let r, _, _ = run_repair ~config:approx_config nl in
         List.iter
           (fun (c : Repair.committed) ->
             match c.Repair.cm_verification with
             | Repair.Verified_cec -> ()
             | Repair.Verified_bound rate ->
                 if rate > approx_bound then
                   QCheck.Test.fail_reportf "committed rate %.4f exceeds bound %.2f" rate
                     approx_bound)
           r.Repair.rs_ledger;
         (* re-measure with fresh stimulus; the declared bound holds up
            to sampling noise (~16k bit samples per port word) *)
         let rate = measured_error_rate ~seed ~cycles:256 nl r.Repair.rs_netlist in
         if rate > approx_bound +. 0.05 then
           QCheck.Test.fail_reportf "independent differential rate %.4f >> bound %.2f" rate
             approx_bound;
         true))

(* ---------- three-engine differential on repaired units ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let golden_path name = Filename.concat "golden" name

(* Repaired netlists must simulate bit-identically across the scalar,
   64-lane and compiled engines. *)
let differential nl cycles =
  let rng = Random.State.make [| 0x3e; Netlist.num_cells nl |] in
  let s64 = Sim64.create nl in
  let sc = Simc.create nl in
  let s1 = Sim.create nl in
  let probe_lane = Sim64.lanes - 1 in
  for c = 1 to cycles do
    List.iter
      (fun (p : Netlist.port) ->
        let w = Array.length p.Netlist.port_nets in
        for lane = 0 to Sim64.lanes - 1 do
          let v = bv w (Random.State.int rng (1 lsl min w 20)) in
          Sim64.set_input s64 ~lane p.Netlist.port_name v;
          Simc.set_input sc ~lane p.Netlist.port_name v;
          if lane = probe_lane then Sim.set_input s1 p.Netlist.port_name v
        done)
      (Netlist.inputs nl);
    Sim64.step s64;
    Simc.step sc;
    Sim.step s1;
    for n = 0 to Netlist.num_nets nl - 1 do
      let w64 = Sim64.net_word s64 n and wc = Simc.net_word sc n in
      if w64 <> wc then
        Alcotest.failf "cycle %d net %d: sim64=%x simc=%x" c n w64 wc;
      let b1 = Sim.net s1 n in
      let b64 = (w64 lsr probe_lane) land 1 = 1 in
      if b1 <> b64 then Alcotest.failf "cycle %d net %d: sim=%b sim64=%b" c n b1 b64
    done
  done

let repaired_alu8 =
  lazy
    (let target = Lift.alu_target ~width:8 () in
     let report = Vega.repair target ~workload:Vega.run_minver_workload in
     report.Vega.rr_result.Repair.rs_netlist)

let test_three_engine_alu () = differential (Lazy.force repaired_alu8) 48

let test_three_engine_fpu () =
  (* a reduced budget keeps the FPU proof load test-sized; the full
     ladder is exercised by the CLI/CI sweep *)
  let target = Lift.fpu_target () in
  let nl = target.Lift.netlist in
  let clock_period_ps = close_clock nl in
  let pairs =
    match Sta.violating_pairs ~timing:aged_timing ~clock_period_ps nl with
    | a :: b :: _ -> [ a; b ]
    | l -> l
  in
  let config = { exact_config with Repair.rp_max_rewrites = 2; rp_max_pair_edits = 2 } in
  let r =
    Repair.run ~config ~netlist:nl ~sp_of_net ~clock_period_ps ~years ~derate
      ~clock_tree:tree ~aglib ~pairs ()
  in
  Alcotest.(check int) "no CEC failures" 0 r.Repair.rs_cec_failures;
  differential r.Repair.rs_netlist 24

let test_golden_vcd_repaired_alu () =
  let nl = Lazy.force repaired_alu8 in
  let stimulus c =
    [
      ("a", bv 8 (c * 37 land 0xff));
      ("b", bv 8 (c * 11 land 0xff));
      ("op", bv 4 (c land 7));
    ]
  in
  let via_simc =
    Vcd.of_engine_run (module Simc.Lane) (Simc.lane_view (Simc.create nl) 5) ~cycles:8 ~stimulus
  in
  let via_sim64 =
    Vcd.of_engine_run
      (module Sim64.Lane)
      (Sim64.lane_view (Sim64.create nl) 5)
      ~cycles:8 ~stimulus
  in
  Alcotest.(check string) "Sim64 and Simc lane dumps agree byte-for-byte" via_sim64 via_simc;
  let expected = read_file (golden_path "repair_alu8.vcd") in
  Alcotest.(check string) "byte-for-byte vs golden/repair_alu8.vcd" expected via_simc

(* ---------- the CLI golden report ---------- *)

let cli_path () =
  let candidates =
    [
      Filename.concat (Filename.concat ".." "bin") "vega_cli.exe";
      Filename.concat (Filename.concat (Filename.concat "_build" "default") "bin") "vega_cli.exe";
    ]
  in
  List.find_opt Sys.file_exists candidates

let test_golden_cli_report () =
  match cli_path () with
  | None -> Alcotest.skip ()
  | Some cli ->
    let tmp = Filename.temp_file "vega_repair" ".txt" in
    let cmd =
      Printf.sprintf "%s repair --unit alu --width 8 > %s 2> %s" (Filename.quote cli)
        (Filename.quote tmp) Filename.null
    in
    let rc = Sys.command cmd in
    (* exit 1: the margin-1.0 ALU8 sweep leaves one pair improved but
       still violating — the exit code says so, the report is golden *)
    Alcotest.(check int) "vega_cli repair exit code" 1 rc;
    let got = read_file tmp in
    Sys.remove tmp;
    let expected = read_file (golden_path "repair_alu.txt") in
    Alcotest.(check string) "ALU repair report matches golden byte-for-byte" expected got

let () =
  Alcotest.run "repair"
    [
      ("properties", [ prop_exact_repair; prop_approx_bound ]);
      ( "differential",
        [
          Alcotest.test_case "three engines on repaired alu8" `Quick test_three_engine_alu;
          Alcotest.test_case "three engines on repaired fpu16 (reduced)" `Quick
            test_three_engine_fpu;
          Alcotest.test_case "golden vcd on repaired alu8" `Quick test_golden_vcd_repaired_alu;
        ] );
      ( "cli",
        [ Alcotest.test_case "golden repair report" `Quick test_golden_cli_report ] );
    ]
