(* Tests for the random-suite generator: seed determinism of the Table 7
   baselines, and the word-parallel netlist-level detection path
   (Lift.detected_cases / Testgen.random_baseline_detection). *)

let alu8 = Lift.alu_target ~width:8 ()

(* --- seed determinism --- *)

let test_alu_suite_determinism () =
  let s1 = Testgen.random_alu_suite ~seed:42 ~width:8 ~cases:20 () in
  let s2 = Testgen.random_alu_suite ~seed:42 ~width:8 ~cases:20 () in
  Alcotest.(check bool) "same seed, identical suite" true (s1 = s2);
  let s3 = Testgen.random_alu_suite ~seed:43 ~width:8 ~cases:20 () in
  Alcotest.(check bool) "different seed, different cases" false
    (s1.Lift.suite_cases = s3.Lift.suite_cases)

let test_fpu_suite_determinism () =
  let mk seed = Testgen.random_fpu_suite ~seed ~fmt:Fpu_format.binary16 ~cases:16 () in
  Alcotest.(check bool) "same seed, identical suite" true (mk 7 = mk 7);
  Alcotest.(check bool) "different seed, different cases" false
    ((mk 7).Lift.suite_cases = (mk 8).Lift.suite_cases)

let test_matched_suite_determinism () =
  let vega_like = Testgen.random_alu_suite ~seed:1 ~width:8 ~cases:9 () in
  let m1 = Testgen.matched_suite ~seed:5 vega_like in
  let m2 = Testgen.matched_suite ~seed:5 vega_like in
  Alcotest.(check bool) "matched suite deterministic" true (m1 = m2);
  Alcotest.(check int) "size matched" 9 (List.length m1.Lift.suite_cases);
  Alcotest.(check bool) "target matched" true
    (m1.Lift.suite_target = vega_like.Lift.suite_target);
  let m3 = Testgen.matched_suite ~seed:6 vega_like in
  Alcotest.(check bool) "reseeded differs" false (m1.Lift.suite_cases = m3.Lift.suite_cases)

(* --- netlist-level detection (Sim64 path) --- *)

(* On the healthy netlist every golden expectation must hold: any mismatch
   here would mean the word-parallel streaming protocol (retire timing,
   lane masking, handshake, flags) disagrees with the hardware. *)
let test_healthy_alu_no_detection () =
  let suite = Testgen.random_alu_suite ~seed:11 ~width:8 ~cases:100 () in
  let verdicts = Lift.detected_cases suite alu8.Lift.netlist in
  Alcotest.(check int) "verdict per case" 100 (Array.length verdicts);
  Alcotest.(check bool) "healthy ALU passes all cases" false (Array.exists Fun.id verdicts)

let test_healthy_fpu_no_detection () =
  let fpu = Lift.fpu_target ~fmt:Fpu_format.binary16 () in
  let suite = Testgen.random_fpu_suite ~seed:12 ~fmt:Fpu_format.binary16 ~cases:60 () in
  Alcotest.(check bool) "healthy FPU passes all cases" false
    (Lift.detects suite fpu.Lift.netlist)

(* Each lifted test case replays the formal trace that provably diverges
   on the r port, so it must detect its own failing netlist. *)
let test_lifted_suite_detects_own_fault () =
  let r = Lift.lift_pair alu8 ~start_dff:"a_q0" ~end_dff:"r_q0" ~violation:Fault.Setup_violation in
  Alcotest.(check bool) "pair lifted" true (r.Lift.cases <> []);
  let suite = Lift.suite_of_results alu8.Lift.kind [ r ] in
  List.iter
    (fun ((spec : Fault.spec), outcome) ->
      match outcome with
      | Lift.Constructed _ ->
        let faulty = Fault.failing_netlist alu8.Lift.netlist spec in
        Alcotest.(check bool)
          (Printf.sprintf "detects %s" (Fault.describe spec))
          true (Lift.detects suite faulty)
      | _ -> ())
    r.Lift.variants

let test_baseline_detection_bounds () =
  let r = Lift.lift_pair alu8 ~start_dff:"a_q0" ~end_dff:"r_q0" ~violation:Fault.Setup_violation in
  let suite = Lift.suite_of_results alu8.Lift.kind [ r ] in
  let spec = List.hd (List.map fst r.Lift.variants) in
  let faulty = Fault.failing_netlist alu8.Lift.netlist spec in
  let rate = Testgen.random_baseline_detection ~seed:3 ~runs:8 suite faulty in
  Alcotest.(check bool) "rate in [0,1]" true (rate >= 0.0 && rate <= 1.0);
  let rate' = Testgen.random_baseline_detection ~seed:3 ~runs:8 suite faulty in
  Alcotest.(check (float 1e-12)) "deterministic under seed" rate rate'

let () =
  Alcotest.run "testgen"
    [
      ( "determinism",
        [
          Alcotest.test_case "random_alu_suite" `Quick test_alu_suite_determinism;
          Alcotest.test_case "random_fpu_suite" `Quick test_fpu_suite_determinism;
          Alcotest.test_case "matched_suite" `Quick test_matched_suite_determinism;
        ] );
      ( "netlist-level detection",
        [
          Alcotest.test_case "healthy ALU" `Quick test_healthy_alu_no_detection;
          Alcotest.test_case "healthy FPU" `Quick test_healthy_fpu_no_detection;
          Alcotest.test_case "lifted suite detects" `Quick test_lifted_suite_detects_own_fault;
          Alcotest.test_case "random baseline" `Quick test_baseline_detection_bounds;
        ] );
    ]
