(* Tests for the static SP-interval analyzer (Check.Spbound).

   The load-bearing property is soundness: on random netlists driven by
   per-bit Bernoulli stimulus, every net's measured signal probability
   must fall inside its static interval (up to sampling noise), and pairs
   the analyzer calls Safe must never show up in the exact phase-1
   violating-pair sweep at the measured SP.  The second property is
   checked with the sound default assumptions, so it is exact — no noise
   margin, no flake budget. *)

module B = Netlist.Builder

let iv = Alcotest.testable
    (fun fmt (i : Spbound.interval) -> Format.fprintf fmt "[%g, %g]" i.Spbound.lo i.Spbound.hi)
    (fun a b -> a.Spbound.lo = b.Spbound.lo && a.Spbound.hi = b.Spbound.hi)

(* ---------- transfer functions and fixpoint on hand-built netlists ---------- *)

let test_tie_cone () =
  let b = B.create "ties" in
  let t1 = B.add_cell b Cell.Kind.Tie1 [||] in
  let n1 = B.add_cell b Cell.Kind.Not [| t1 |] in
  let a = B.add_cell b Cell.Kind.And2 [| t1; n1 |] in
  B.add_output b "y" [| a |];
  let nl = B.finish b in
  let sb = Spbound.analyze nl in
  Alcotest.check iv "Tie1 is the singleton 1" (Spbound.point 1.0) (Spbound.sp sb t1);
  Alcotest.check iv "Not Tie1 is the singleton 0" (Spbound.point 0.0) (Spbound.sp sb n1);
  Alcotest.check iv "And of complementary ties is 0" (Spbound.point 0.0) (Spbound.sp sb a)

let test_independent_tightening () =
  (* Two distinct input bits are independent sources: the And interval is
     the exact product, far tighter than Frechet's [0, 0.5]. *)
  let b = B.create "indep" in
  let x = B.add_input b "x" 1 in
  let y = B.add_input b "y" 1 in
  let a = B.add_cell b Cell.Kind.And2 [| x.(0); y.(0) |] in
  B.add_output b "o" [| a |];
  let nl = B.finish b in
  let assume _ _ = Spbound.point 0.5 in
  let sb = Spbound.analyze ~assume nl in
  Alcotest.check iv "independent And of two 0.5 bits is exactly 0.25" (Spbound.point 0.25)
    (Spbound.sp sb a)

let test_reconvergent_frechet () =
  (* x and (not x) share support {x}: no tightening applies, and the
     Frechet And bound [0, 0.5] must still contain the true value 0. *)
  let b = B.create "reconv" in
  let x = B.add_input b "x" 1 in
  let n = B.add_cell b Cell.Kind.Not [| x.(0) |] in
  let a = B.add_cell b Cell.Kind.And2 [| x.(0); n |] in
  B.add_output b "o" [| a |];
  let nl = B.finish b in
  let assume _ _ = Spbound.point 0.5 in
  let sb = Spbound.analyze ~assume nl in
  Alcotest.check iv "reconvergent And falls back to the Frechet box" (Spbound.make 0.0 0.5)
    (Spbound.sp sb a)

(* A register accumulating Or(q, x) with a low-probability x: the interval
   hi drifts up by x.hi per iteration, which exercises both the patient
   fixpoint (converges by saturation) and the widening cutoff. *)
let drifting_register () =
  let b = B.create "drift" in
  let x = B.add_input b "x" 1 in
  let q_id, q = B.add_cell_with_id ~reset_value:false b Cell.Kind.Dff [| x.(0) |] in
  let o = B.add_cell b Cell.Kind.Or2 [| q; x.(0) |] in
  B.rewire_input b ~cell_id:q_id ~pin:0 o;
  B.add_output b "y" [| q |];
  (B.finish b, q)

let test_widening_cutoff () =
  let nl, q = drifting_register () in
  let assume _ _ = Spbound.make 0.0 0.05 in
  let cfg = { Spbound.default_config with Spbound.widen_after = 2 } in
  let sb = Spbound.analyze ~config:cfg ~assume nl in
  Alcotest.(check int) "the drifting register gets widened" 1 (Spbound.widened sb);
  Alcotest.check iv "widened register lands on top" Spbound.top (Spbound.sp sb q)

let test_fixpoint_saturates_without_widening () =
  let nl, q = drifting_register () in
  let assume _ _ = Spbound.make 0.0 0.05 in
  let cfg = { Spbound.default_config with Spbound.widen_after = 64 } in
  let sb = Spbound.analyze ~config:cfg ~assume nl in
  Alcotest.(check int) "no widening under a patient budget" 0 (Spbound.widened sb);
  Alcotest.check iv "the accumulated interval saturates at [0, 1]" Spbound.top
    (Spbound.sp sb q);
  Alcotest.(check bool) "saturation takes many iterations" true (Spbound.iterations sb > 10)

(* ---------- random netlists (same shape as the Sim64 generator) ---------- *)

let comb_kinds =
  [|
    Cell.Kind.Tie0;
    Cell.Kind.Tie1;
    Cell.Kind.Buf;
    Cell.Kind.Not;
    Cell.Kind.And2;
    Cell.Kind.Or2;
    Cell.Kind.Xor2;
    Cell.Kind.Nand2;
    Cell.Kind.Nor2;
    Cell.Kind.Xnor2;
    Cell.Kind.Mux2;
  |]

let build_random_netlist rng =
  let b = B.create "rand" in
  let pool = ref [] in
  let n_ports = 1 + Random.State.int rng 3 in
  for i = 0 to n_ports - 1 do
    let w = 1 + Random.State.int rng 4 in
    pool := Array.to_list (B.add_input b (Printf.sprintf "in%d" i) w) @ !pool
  done;
  let pick () =
    let a = Array.of_list !pool in
    a.(Random.State.int rng (Array.length a))
  in
  let n_cells = 5 + Random.State.int rng 36 in
  for _ = 1 to n_cells do
    let out =
      if Random.State.int rng 4 = 0 then
        B.add_cell ~clock_domain:0 ~reset_value:(Random.State.bool rng) b Cell.Kind.Dff
          [| pick () |]
      else begin
        let k = comb_kinds.(Random.State.int rng (Array.length comb_kinds)) in
        B.add_cell b k (Array.init (Cell.Kind.arity k) (fun _ -> pick ()))
      end
    in
    pool := out :: !pool
  done;
  let n_out = 1 + Random.State.int rng 2 in
  for i = 0 to n_out - 1 do
    let w = 1 + Random.State.int rng 3 in
    B.add_output b (Printf.sprintf "out%d" i) (Array.init w (fun _ -> pick ()))
  done;
  B.finish b

(* Per-input-bit Bernoulli probabilities, and a profiled Sim64 run that
   draws every lane of every bit i.i.d. at its probability. *)
let random_bit_probs rng nl =
  let probs = Hashtbl.create 16 in
  List.iter
    (fun (p : Netlist.port) ->
      Array.iteri
        (fun bit _ ->
          Hashtbl.replace probs (p.Netlist.port_name, bit) (Random.State.float rng 1.0))
        p.Netlist.port_nets)
    (Netlist.inputs nl);
  probs

let profiled_bernoulli_run rng nl probs cycles =
  let s = Sim64.create ~profile:true nl in
  for _ = 1 to cycles do
    List.iter
      (fun (p : Netlist.port) ->
        Array.iteri
          (fun bit _ ->
            let pr = Hashtbl.find probs (p.Netlist.port_name, bit) in
            for lane = 0 to Sim64.lanes - 1 do
              Sim64.set_input_bit s ~lane p.Netlist.port_name bit
                (Random.State.float rng 1.0 < pr)
            done)
          p.Netlist.port_nets)
      (Netlist.inputs nl);
    Sim64.step s
  done;
  s

(* Soundness of the intervals themselves.  Assumptions are the true
   Bernoulli probabilities widened by [delta]; the measured SP of every
   net must land inside the static interval up to [eps] of sampling noise
   (63 lanes x 128 cycles, autocorrelated only across short DFF chains). *)
let prop_interval_soundness =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"static interval contains measured SP (random netlists)"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000_000))
       (fun seed ->
         let rng = Random.State.make [| seed; 0x5bd |] in
         let nl = build_random_netlist rng in
         let probs = random_bit_probs rng nl in
         let delta = 0.02 in
         let assume name bit =
           let p = Hashtbl.find probs (name, bit) in
           Spbound.make (p -. delta) (p +. delta)
         in
         let sb = Spbound.analyze ~assume nl in
         let s = profiled_bernoulli_run rng nl probs 128 in
         let eps = 0.08 in
         let ok = ref true in
         for n = 0 to Netlist.num_nets nl - 1 do
           let i = Spbound.sp sb n in
           let m = Sim64.sp s n in
           if m < i.Spbound.lo -. eps || m > i.Spbound.hi +. eps then ok := false
         done;
         !ok))

let aglib = Aging.Timing_library.build Cell.Library.c28

(* Safe pairs never violate: classify under the sound default assumptions
   (valid for any workload), then run the exact phase-1 sweep at a
   measured SP clamped into the static intervals.  No Safe pair may
   appear among the violations, and skipping the Safe set must leave the
   violation list bit-identical.  Exact check, no noise margin. *)
let prop_safe_pairs_never_violate =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"Safe pairs never violate in the exact sweep"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000_000))
       (fun seed ->
         let rng = Random.State.make [| seed; 0xa9ed |] in
         let nl = build_random_netlist rng in
         let fresh = Sta.fresh_timing Cell.Library.c28 in
         let probe = Sta.analyze ~timing:fresh ~clock_period_ps:1e9 nl in
         let crit =
           List.fold_left
             (fun acc (e : Sta.endpoint_slack) ->
               Float.max acc (1e9 -. e.Sta.setup_slack_ps))
             0.0 probe.Sta.endpoint_slacks
         in
         if crit <= 0.0 then true
         else begin
           let clock_period_ps = crit *. 1.01 in
           let sb = Spbound.analyze nl in
           let pvs = Spbound.classify ~aglib ~years:10.0 ~clock_period_ps sb in
           let safe = Hashtbl.create 64 in
           List.iter
             (fun (pv : Spbound.pair_verdict) ->
               if pv.Spbound.pv_verdict = Spbound.Safe then
                 Hashtbl.replace safe (pv.Spbound.pv_start, pv.Spbound.pv_end, pv.Spbound.pv_check)
                   ())
             pvs;
           let probs = random_bit_probs rng nl in
           let s = profiled_bernoulli_run rng nl probs 64 in
           let sp_of_net n =
             let i = Spbound.sp sb n in
             Float.min i.Spbound.hi (Float.max i.Spbound.lo (Sim64.sp s n))
           in
           let aged = Sta.aged_timing ~sp_of_net ~years:10.0 aglib in
           let viol = Sta.violating_pairs ~timing:aged ~clock_period_ps nl in
           let pruned =
             Sta.violating_pairs
               ~skip:(fun st en ck -> Hashtbl.mem safe (st, en, ck))
               ~timing:aged ~clock_period_ps nl
           in
           List.for_all (fun (st, en, ck, _) -> not (Hashtbl.mem safe (st, en, ck))) viol
           && pruned = viol
         end))

(* ---------- the CLI surface ---------- *)

let cli_path () =
  let candidates =
    [
      Filename.concat (Filename.concat ".." "bin") "vega_cli.exe";
      Filename.concat (Filename.concat (Filename.concat "_build" "default") "bin") "vega_cli.exe";
    ]
  in
  List.find_opt Sys.file_exists candidates

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_static_report () =
  match cli_path () with
  | None -> Alcotest.skip ()
  | Some cli ->
    let tmp = Filename.temp_file "vega_spbound" ".txt" in
    let cmd =
      Printf.sprintf "%s analyze --unit alu --width 8 --static > %s 2> %s" (Filename.quote cli)
        (Filename.quote tmp) Filename.null
    in
    let rc = Sys.command cmd in
    Alcotest.(check int) "vega_cli analyze --static exits 0" 0 rc;
    let got = read_file tmp in
    Sys.remove tmp;
    let expected = read_file (Filename.concat "golden" "spbound_alu.txt") in
    Alcotest.(check string) "ALU static report matches golden byte-for-byte" expected got

(* Every subcommand wired into Cmd.group, and nothing else.  Keep this
   list in sync with the usage header at the top of bin/vega_cli.ml —
   the test exists so adding a subcommand without updating the header
   shows up as a diff here. *)
let expected_subcommands =
  [
    "analyze"; "attack"; "check"; "emit-c"; "encode"; "fleet"; "fuzz"; "guard-campaign"; "lift";
    "lint"; "monitors"; "optimize"; "repair"; "report"; "run"; "verilog";
  ]

let test_subcommand_list () =
  match cli_path () with
  | None -> Alcotest.skip ()
  | Some cli ->
    let tmp = Filename.temp_file "vega_help" ".txt" in
    let cmd =
      Printf.sprintf "%s --help=plain > %s 2> %s" (Filename.quote cli) (Filename.quote tmp)
        Filename.null
    in
    let rc = Sys.command cmd in
    Alcotest.(check int) "vega_cli --help exits 0" 0 rc;
    let help = read_file tmp in
    Sys.remove tmp;
    (* Command entries are the 7-space-indented names of the COMMANDS
       section; descriptions are indented deeper. *)
    let commands = ref [] in
    let in_commands = ref false in
    String.split_on_char '\n' help
    |> List.iter (fun line ->
           if line = "COMMANDS" then in_commands := true
           else if String.length line > 0 && line.[0] <> ' ' then in_commands := false
           else if !in_commands && String.length line > 7 && String.sub line 0 7 = "       "
                   && line.[7] <> ' ' then begin
             let rest = String.sub line 7 (String.length line - 7) in
             let name =
               match String.index_opt rest ' ' with
               | Some i -> String.sub rest 0 i
               | None -> rest
             in
             commands := name :: !commands
           end);
    let got = List.sort_uniq compare !commands in
    Alcotest.(check (list string)) "Cmd.group matches the documented subcommand list"
      expected_subcommands got

let () =
  Alcotest.run "spbound"
    [
      ( "transfers",
        [
          Alcotest.test_case "tie cones are singletons" `Quick test_tie_cone;
          Alcotest.test_case "disjoint supports tighten to the exact product" `Quick
            test_independent_tightening;
          Alcotest.test_case "reconvergence falls back to Frechet" `Quick
            test_reconvergent_frechet;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "widening cuts off a drifting register" `Quick test_widening_cutoff;
          Alcotest.test_case "patient fixpoint saturates soundly" `Quick
            test_fixpoint_saturates_without_widening;
        ] );
      ("soundness", [ prop_interval_soundness; prop_safe_pairs_never_violate ]);
      ( "cli",
        [
          Alcotest.test_case "static report matches golden" `Quick test_golden_static_report;
          Alcotest.test_case "subcommand list is complete" `Quick test_subcommand_list;
        ] );
    ]
