(* Tests for the area/power report: internal consistency of the totals,
   the activity model's scaling laws, profile preconditions, and the
   engine-generic path over a Sim64 lane view. *)

let profiled_adder cycles =
  let nl = Example_circuits.pipelined_adder () in
  let sim = Sim.create ~profile:true nl in
  Sim.run_random sim ~cycles;
  sim

let test_report_consistency () =
  let sim = profiled_adder 400 in
  let r = Power.analyze Cell.Library.c28 sim ~clock_mhz:500.0 in
  Alcotest.(check int) "cell count" 10 r.Power.cell_count;
  Alcotest.(check int) "rows cover every cell" r.Power.cell_count
    (List.fold_left (fun acc row -> acc + row.Power.count) 0 r.Power.by_kind);
  Alcotest.(check (float 1e-9)) "total area = sum of rows"
    (List.fold_left (fun acc row -> acc +. row.Power.area_um2) 0.0 r.Power.by_kind)
    r.Power.total_area_um2;
  Alcotest.(check (float 1e-9)) "total leakage = sum of rows"
    (List.fold_left (fun acc row -> acc +. row.Power.leakage_nw) 0.0 r.Power.by_kind)
    r.Power.total_leakage_nw;
  Alcotest.(check (float 1e-9)) "clock recorded" 500.0 r.Power.clock_mhz;
  (* by_kind follows the declaration order of Cell.Kind.all *)
  let rank k =
    let rec go i = function
      | [] -> Alcotest.fail "kind missing from Cell.Kind.all"
      | x :: tl -> if x = k then i else go (i + 1) tl
    in
    go 0 Cell.Kind.all
  in
  ignore
    (List.fold_left
       (fun prev row ->
         let x = rank row.Power.kind in
         Alcotest.(check bool) "rows in Kind.all order" true (x > prev);
         x)
       (-1) r.Power.by_kind)

let test_dynamic_scales_with_clock () =
  let sim = profiled_adder 400 in
  let r1 = Power.analyze Cell.Library.c28 sim ~clock_mhz:250.0 in
  let r2 = Power.analyze Cell.Library.c28 sim ~clock_mhz:750.0 in
  Alcotest.(check bool) "dynamic positive" true (r1.Power.total_dynamic_nw > 0.0);
  Alcotest.(check (float 1e-6)) "P_dyn linear in f" (3.0 *. r1.Power.total_dynamic_nw)
    r2.Power.total_dynamic_nw;
  (* leakage is frequency-independent *)
  Alcotest.(check (float 1e-9)) "leakage unchanged" r1.Power.total_leakage_nw
    r2.Power.total_leakage_nw

let test_leakage_is_state_weighted () =
  (* a DFF chain parked at constant 1 leaks differently from one parked
     at 0: leakage is SP-weighted, not a per-cell constant *)
  let weigh bit =
    let nl = Example_circuits.dff_chain 4 in
    let sim = Sim.create ~profile:true nl in
    for _ = 1 to 32 do
      Sim.set_input_bit sim "d" 0 bit;
      Sim.step sim
    done;
    (Power.analyze Cell.Library.c28 sim ~clock_mhz:500.0).Power.total_leakage_nw
  in
  let at0 = weigh false and at1 = weigh true in
  Alcotest.(check bool) "state changes leakage" true (Float.abs (at0 -. at1) > 1e-6)

let test_requires_profile () =
  let nl = Example_circuits.pipelined_adder () in
  let sim = Sim.create nl in
  Alcotest.check_raises "unprofiled simulator rejected"
    (Invalid_argument "Sim: simulator was created without ~profile:true") (fun () ->
      ignore (Power.analyze Cell.Library.c28 sim ~clock_mhz:500.0));
  let sim' = Sim.create ~profile:true nl in
  Alcotest.check_raises "zero samples rejected" (Invalid_argument "Sim: no cycles sampled yet")
    (fun () -> ignore (Power.analyze Cell.Library.c28 sim' ~clock_mhz:500.0))

let test_engine_generic_lane_view () =
  (* identical stimulus in every lane: the lane-aggregated report must
     coincide with the scalar one *)
  let nl = Example_circuits.lfsr4 () in
  let scalar = Sim.create ~profile:true nl in
  let s64 = Sim64.create ~profile:true nl in
  for c = 0 to 29 do
    let e = Bitvec.create ~width:1 (c land 1) in
    Sim.set_input scalar "enable" e;
    Sim64.set_input_all s64 "enable" e;
    Sim.step scalar;
    Sim64.step s64
  done;
  let r = Power.analyze Cell.Library.c28 scalar ~clock_mhz:600.0 in
  let r64 =
    Power.analyze_engine (module Sim64.Lane) Cell.Library.c28 (Sim64.lane_view s64 0)
      ~clock_mhz:600.0
  in
  Alcotest.(check int) "cell count" r.Power.cell_count r64.Power.cell_count;
  Alcotest.(check (float 1e-9)) "area" r.Power.total_area_um2 r64.Power.total_area_um2;
  Alcotest.(check (float 1e-9)) "leakage" r.Power.total_leakage_nw r64.Power.total_leakage_nw;
  Alcotest.(check (float 1e-9)) "dynamic" r.Power.total_dynamic_nw r64.Power.total_dynamic_nw

let test_render () =
  let sim = profiled_adder 100 in
  let r = Power.analyze Cell.Library.c28 sim ~clock_mhz:500.0 in
  let text = Power.render r in
  Alcotest.(check bool) "mentions cell count" true
    (String.length text > 0
    &&
    let needle = "10 cells" in
    let rec find i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || find (i + 1))
    in
    find 0);
  (* one line per populated kind row plus the three header lines *)
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "line count" (3 + List.length r.Power.by_kind) (List.length lines)

let () =
  Alcotest.run "power"
    [
      ( "report",
        [
          Alcotest.test_case "consistency" `Quick test_report_consistency;
          Alcotest.test_case "dynamic scales with clock" `Quick test_dynamic_scales_with_clock;
          Alcotest.test_case "leakage is state-weighted" `Quick test_leakage_is_state_weighted;
          Alcotest.test_case "requires profile" `Quick test_requires_profile;
        ] );
      ( "engines",
        [ Alcotest.test_case "sim64 lane view" `Quick test_engine_generic_lane_view ] );
      ("render", [ Alcotest.test_case "text report" `Quick test_render ]);
    ]
