(* Tests for the in-situ canary monitors: planning, insertion, the CEC
   inertness gate, mutation detection, arming, and trip behaviour. *)

module B = Netlist.Builder

let alu8 = (Lift.alu_target ~width:8 ()).Lift.netlist
let fresh = Sta.fresh_timing Cell.Library.c28

(* target period: fresh critical path with a 1% margin, like Vega's
   signoff-derived clock *)
let period nl =
  let probe = Sta.analyze ~timing:fresh ~clock_period_ps:1e9 nl in
  let crit =
    List.fold_left
      (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
      0.0 probe.Sta.endpoint_slacks
  in
  crit *. 1.01

let alu_paths = Canary.plan ~count:2 ~pessimism:1.25 alu8 ~timing:fresh ~clock_period_ps:(period alu8)

let test_plan () =
  Alcotest.(check bool) "plan finds near-critical paths" true (alu_paths <> []);
  List.iter
    (fun (p : Sta.path) ->
      match p.Sta.start with
      | Sta.From_dff _ -> ()
      | Sta.From_input _ -> Alcotest.fail "plan returned an input-launched path")
    alu_paths;
  (* distinct endpoints *)
  let eps = List.map (fun (p : Sta.path) -> p.Sta.finish) alu_paths in
  Alcotest.(check int) "distinct endpoints" (List.length eps)
    (List.length (List.sort_uniq compare eps))

let test_insert_and_verify () =
  let monitored, canaries = Canary.insert alu8 alu_paths in
  Alcotest.(check bool) "has canaries" true (Canary.has_canaries monitored);
  Alcotest.(check int) "count matches" (List.length alu_paths) (Canary.count monitored);
  Alcotest.(check bool) "inserted dormant" false (Canary.armed monitored);
  Alcotest.(check int) "trip bit indices" (List.length canaries)
    (List.length (List.filter (fun c -> c.Canary.cn_index >= 0) canaries));
  (match Canary.verify ~original:alu8 monitored with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("verify rejected a sound insertion: " ^ e));
  (* double insertion is refused *)
  Alcotest.check_raises "no double insertion"
    (Invalid_argument "Canary.insert: netlist already has canaries") (fun () ->
      ignore (Canary.insert monitored alu_paths))

let test_arm_roundtrip () =
  let monitored, _ = Canary.insert alu8 alu_paths in
  let armed = Canary.arm monitored in
  Alcotest.(check bool) "armed" true (Canary.armed armed);
  Alcotest.(check bool) "disarm undoes arm" false (Canary.armed (Canary.disarm armed));
  Alcotest.(check bool) "plain netlist is not armed" false (Canary.armed alu8);
  Alcotest.check_raises "arm without canaries"
    (Invalid_argument "Canary.arm: netlist has no canaries") (fun () -> ignore (Canary.arm alu8));
  (* the armed netlist still passes the full gate *)
  match Canary.verify ~original:alu8 armed with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("verify rejected the armed netlist: " ^ e)

(* A mutated comparator (XOR -> XNOR) makes the disarmed canary trip
   spontaneously; the verification gate must catch it. *)
let test_mutated_comparator_caught () =
  let monitored, _ = Canary.insert alu8 alu_paths in
  let cmp = Netlist.find_cell monitored "_cn0_cmp" in
  let b = B.of_netlist monitored in
  B.set_kind b ~cell_id:cmp.Netlist.id Cell.Kind.Xnor2;
  let broken = B.finish b in
  match Canary.verify ~original:alu8 broken with
  | Ok () -> Alcotest.fail "verify accepted a mutated comparator"
  | Error _ -> ()

(* A comparator stuck at 0 can never trip; the armed-trip cover catches it.
   Stuck-0 is modeled as cmp = Xor(fresh, fresh): rewire the comparator's
   aged pin onto its fresh pin. *)
let test_stuck_comparator_caught () =
  let single, _ = Canary.insert alu8 [ List.hd alu_paths ] in
  let cmp = Netlist.find_cell single "_cn0_cmp" in
  let b = B.of_netlist single in
  B.rewire_input b ~cell_id:cmp.Netlist.id ~pin:1 cmp.Netlist.inputs.(0);
  let stuck0 = B.finish b in
  match Canary.verify ~original:alu8 stuck0 with
  | Ok () -> Alcotest.fail "verify accepted a stuck-at-0 comparator"
  | Error _ -> ()

(* Behavioural check on the real simulator: disarmed canaries never trip;
   armed ones trip as soon as the monitored launch register toggles. *)
let test_trip_simulation () =
  let monitored, _ = Canary.insert alu8 alu_paths in
  let drive s k =
    Sim.set_input s Alu.op_port (Bitvec.create ~width:4 (Alu.op_code Alu.Add));
    Sim.set_input s Alu.a_port (Bitvec.create ~width:8 (if k mod 2 = 0 then 0x00 else 0xFF));
    Sim.set_input s Alu.b_port (Bitvec.create ~width:8 (k * 37 land 0xFF));
    Sim.step s
  in
  let run nl cycles =
    let s = Sim.create nl in
    Sim.reset s;
    let tripped = ref 0 in
    for k = 0 to cycles - 1 do
      drive s k;
      tripped := max !tripped (Bitvec.to_int (Sim.output s Canary.trip_port))
    done;
    !tripped
  in
  Alcotest.(check int) "disarmed never trips" 0 (run monitored 50);
  Alcotest.(check bool) "armed trips under a toggling workload" true
    (run (Canary.arm monitored) 50 > 0)

(* QCheck: insertion on a random design x a random monitored path always
   lints clean and is CEC-inert w.r.t. the original outputs. *)
let comb_kinds =
  [|
    Cell.Kind.Tie0;
    Cell.Kind.Tie1;
    Cell.Kind.Buf;
    Cell.Kind.Not;
    Cell.Kind.And2;
    Cell.Kind.Or2;
    Cell.Kind.Xor2;
    Cell.Kind.Nand2;
    Cell.Kind.Nor2;
    Cell.Kind.Xnor2;
    Cell.Kind.Mux2;
  |]

let build_random_netlist rng =
  let b = B.create "rand" in
  let pool = ref [] in
  let n_ports = 1 + Random.State.int rng 3 in
  for i = 0 to n_ports - 1 do
    let w = 1 + Random.State.int rng 4 in
    pool := Array.to_list (B.add_input b (Printf.sprintf "in%d" i) w) @ !pool
  done;
  let pick () =
    let a = Array.of_list !pool in
    a.(Random.State.int rng (Array.length a))
  in
  let n_cells = 5 + Random.State.int rng 36 in
  for _ = 1 to n_cells do
    let out =
      if Random.State.int rng 3 = 0 then
        B.add_cell ~clock_domain:0 ~reset_value:(Random.State.bool rng) b Cell.Kind.Dff
          [| pick () |]
      else begin
        let k = comb_kinds.(Random.State.int rng (Array.length comb_kinds)) in
        B.add_cell b k (Array.init (Cell.Kind.arity k) (fun _ -> pick ()))
      end
    in
    pool := out :: !pool
  done;
  let n_out = 1 + Random.State.int rng 2 in
  for i = 0 to n_out - 1 do
    let w = 1 + Random.State.int rng 3 in
    B.add_output b (Printf.sprintf "out%d" i) (Array.init w (fun _ -> pick ()))
  done;
  B.finish b

let prop_insert_inert =
  QCheck.Test.make ~count:60 ~name:"canary insertion lints clean and is CEC-inert"
    QCheck.(small_int)
    (fun seed ->
      let rng = Random.State.make [| seed; 0xca9a |] in
      let nl = build_random_netlist rng in
      (* every register-launched path violates at a 1 ps clock; pick a few *)
      let paths =
        Canary.plan ~count:(1 + Random.State.int rng 3) nl ~timing:fresh ~clock_period_ps:1.0
      in
      match paths with
      | [] -> true (* no register-to-register path in this design *)
      | paths ->
        let monitored, canaries = Canary.insert nl paths in
        List.length canaries = List.length paths
        && Check.errors (Check.lint_netlist monitored) = []
        && (match Cec.check ~free_inputs:true nl monitored with
           | Cec.Equivalent -> true
           | _ -> false)
        &&
        (* arming must not disturb the original outputs either *)
        (match Cec.check ~free_inputs:true nl (Canary.arm monitored) with
        | Cec.Equivalent -> true
        | _ -> false))

let () =
  Alcotest.run "monitor"
    [
      ( "canary",
        [
          Alcotest.test_case "plan" `Quick test_plan;
          Alcotest.test_case "insert + verify" `Quick test_insert_and_verify;
          Alcotest.test_case "arm roundtrip" `Quick test_arm_roundtrip;
          Alcotest.test_case "mutated comparator caught" `Quick test_mutated_comparator_caught;
          Alcotest.test_case "stuck comparator caught" `Quick test_stuck_comparator_caught;
          Alcotest.test_case "trip simulation" `Quick test_trip_simulation;
          QCheck_alcotest.to_alcotest prop_insert_inert;
        ] );
    ]
