(* Three-engine differential tests for the compiled simulator: on random
   netlists (with multi-stage register chains and guaranteed-dead logic)
   Simc must agree with Sim64 on every net word of every cycle, with the
   scalar Sim on every output bit of the probed lanes, and — when
   profiling — reproduce Sim64's SP/toggle counters exactly.  Failures
   report the first divergent (cycle, net) pair.  Also: levelizer
   properties (rank monotonicity, determinism, combinational-cycle
   rejection), golden-VCD regression through the Simc lane view, and a
   zero-allocation check on the compiled dispatch loop. *)

module B = Netlist.Builder

let bv w v = Bitvec.create ~width:w v
let rand_bits rng w = Random.State.int rng (1 lsl w)

(* --- random netlist generation --- *)

let comb_kinds =
  [|
    Cell.Kind.Tie0;
    Cell.Kind.Tie1;
    Cell.Kind.Buf;
    Cell.Kind.Not;
    Cell.Kind.And2;
    Cell.Kind.Or2;
    Cell.Kind.Xor2;
    Cell.Kind.Nand2;
    Cell.Kind.Nor2;
    Cell.Kind.Xnor2;
    Cell.Kind.Mux2;
  |]

(* Like the PR-1 generator, plus a guaranteed multi-stage DFF chain that
   feeds an output (register depth) and guaranteed dead cells (logic the
   optimizer must drop while keeping it observable via the fallback). *)
let build_random_netlist rng =
  let b = B.create "rand" in
  let pool = ref [] in
  let n_ports = 1 + Random.State.int rng 3 in
  for i = 0 to n_ports - 1 do
    let w = 1 + Random.State.int rng 4 in
    pool := Array.to_list (B.add_input b (Printf.sprintf "in%d" i) w) @ !pool
  done;
  let pick () =
    let a = Array.of_list !pool in
    a.(Random.State.int rng (Array.length a))
  in
  let n_cells = 5 + Random.State.int rng 36 in
  for _ = 1 to n_cells do
    let out =
      if Random.State.int rng 4 = 0 then
        B.add_cell ~clock_domain:0 ~reset_value:(Random.State.bool rng) b Cell.Kind.Dff
          [| pick () |]
      else begin
        let k = comb_kinds.(Random.State.int rng (Array.length comb_kinds)) in
        B.add_cell b k (Array.init (Cell.Kind.arity k) (fun _ -> pick ()))
      end
    in
    pool := out :: !pool
  done;
  (* a register chain of depth >= 2, always observed *)
  let chain = ref (pick ()) in
  for _ = 1 to 2 + Random.State.int rng 3 do
    chain :=
      B.add_cell ~clock_domain:0 ~reset_value:(Random.State.bool rng) b Cell.Kind.Dff
        [| !chain |]
  done;
  let n_out = 1 + Random.State.int rng 2 in
  for i = 0 to n_out - 1 do
    let w = 1 + Random.State.int rng 3 in
    B.add_output b (Printf.sprintf "out%d" i) (Array.init w (fun _ -> pick ()))
  done;
  B.add_output b "chain" [| !chain |];
  (* nothing below ever reaches an output or a D pin: guaranteed dead *)
  let d1 = B.add_cell b Cell.Kind.Xor2 [| pick (); pick () |] in
  let d2 = B.add_cell b Cell.Kind.Not [| d1 |] in
  let _d3 = B.add_cell b Cell.Kind.Mux2 [| d1; d2; pick () |] in
  B.finish b

(* --- the three-engine differential harness --- *)

let ref_lanes = [| 0; Sim64.lanes - 1 |]

(* Run [cycles] cycles of per-lane random stimulus on Sim64, a profiled
   Simc, an optimized Simc and scalar references on the probed lanes;
   [Error msg] describes the first divergence. *)
let differential_run rng nl cycles =
  let s64 = Sim64.create ~profile:true nl in
  let scp = Simc.create ~profile:true nl in
  let sco = Simc.create nl in
  let refs = Array.map (fun _ -> Sim.create ~profile:true nl) ref_lanes in
  let in_ports = Netlist.inputs nl in
  let out_ports = Netlist.outputs nl in
  let num_nets = Netlist.num_nets nl in
  let fail = ref None in
  let report c msg = if !fail = None then fail := Some (Printf.sprintf "cycle %d: %s" c msg) in
  for c = 1 to cycles do
    List.iter
      (fun (p : Netlist.port) ->
        let w = Array.length p.Netlist.port_nets in
        for lane = 0 to Sim64.lanes - 1 do
          let v = bv w (rand_bits rng w) in
          Sim64.set_input s64 ~lane p.Netlist.port_name v;
          Simc.set_input scp ~lane p.Netlist.port_name v;
          Simc.set_input sco ~lane p.Netlist.port_name v;
          Array.iteri
            (fun i rl -> if rl = lane then Sim.set_input refs.(i) p.Netlist.port_name v)
            ref_lanes
        done)
      in_ports;
    if Random.State.int rng 4 = 0 then begin
      Sim64.hold_clock s64;
      Simc.hold_clock scp;
      Simc.hold_clock sco;
      Array.iter Sim.hold_clock refs
    end
    else begin
      Sim64.step s64;
      Simc.step scp;
      Simc.step sco;
      Array.iter (fun r -> Sim.step r) refs
    end;
    (* every net word must agree between Sim64 and both Simc modes,
       including the eliminated/dead nets *)
    for n = 0 to num_nets - 1 do
      let w64 = Sim64.net_word s64 n in
      let wp = Simc.net_word scp n in
      let wo = Simc.net_word sco n in
      if wp <> w64 then
        report c (Printf.sprintf "net %d: sim64=%x simc(profile)=%x" n w64 wp);
      if wo <> w64 then report c (Printf.sprintf "net %d: sim64=%x simc=%x" n w64 wo)
    done;
    (* output ports against the scalar reference on the probed lanes *)
    List.iter
      (fun (p : Netlist.port) ->
        Array.iteri
          (fun i lane ->
            let want = Sim.output refs.(i) p.Netlist.port_name in
            if not (Bitvec.equal want (Simc.output sco ~lane p.Netlist.port_name)) then
              report c (Printf.sprintf "output %s lane %d: simc <> scalar" p.Netlist.port_name lane))
          ref_lanes)
      out_ports
  done;
  (* profiled counters byte-identical to Sim64's *)
  if Simc.samples scp <> Sim64.samples s64 then
    report cycles
      (Printf.sprintf "samples: sim64=%d simc=%d" (Sim64.samples s64) (Simc.samples scp));
  if Simc.cycles_sampled scp <> Sim64.cycles_sampled s64 then report cycles "cycles_sampled";
  for n = 0 to num_nets - 1 do
    if Simc.ones_count scp n <> Sim64.ones_count s64 n then
      report cycles (Printf.sprintf "net %d: ones counter" n);
    if Simc.toggles_count scp n <> Sim64.toggles_count s64 n then
      report cycles (Printf.sprintf "net %d: toggles counter" n)
  done;
  match !fail with None -> Ok () | Some msg -> Error msg

let prop_differential_random_netlists =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"Simc = Sim64 = scalar Sim on random netlists"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000_000))
       (fun seed ->
         let rng = Random.State.make [| seed; 0x51c |] in
         let nl = build_random_netlist rng in
         match differential_run rng nl (6 + Random.State.int rng 6) with
         | Ok () -> true
         | Error msg -> QCheck.Test.fail_reportf "seed %d: first divergence at %s" seed msg))

let test_differential_examples () =
  let rng = Random.State.make [| 0x51b6c |] in
  List.iter
    (fun nl ->
      match differential_run rng nl 16 with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "differential on %s: first divergence at %s" (Netlist.name nl) msg)
    [
      Example_circuits.pipelined_adder ();
      Example_circuits.pipelined_adder ~split_domains:true ();
      Example_circuits.dff_chain 5;
      Example_circuits.lfsr4 ();
      Example_circuits.comb_xor_tree 8;
    ]

(* --- levelizer properties --- *)

let prop_levelize_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"levelize: comb rank > comb fanin ranks, DFF rank 0"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000_000))
       (fun seed ->
         let rng = Random.State.make [| seed; 0x1e7e1 |] in
         let nl = build_random_netlist rng in
         let raw = Netlist.raw nl in
         match Simc.levelize raw with
         | Error msg -> QCheck.Test.fail_reportf "frozen netlist rejected: %s" msg
         | Ok ranks ->
           let cells = Netlist.cells nl in
           Array.for_all
             (fun (c : Netlist.cell) ->
               if c.kind = Cell.Kind.Dff then ranks.(c.id) = 0
               else
                 ranks.(c.id) >= 1
                 && Array.for_all
                      (fun inp ->
                        match Netlist.driver nl inp with
                        | Netlist.Driven_by_input _ -> true
                        | Netlist.Driven_by_cell d ->
                          cells.(d).kind = Cell.Kind.Dff || ranks.(c.id) > ranks.(d))
                      c.inputs)
             cells))

let test_levelize_deterministic () =
  let rng = Random.State.make [| 0xde7 |] in
  for _ = 1 to 20 do
    let raw = Netlist.raw (build_random_netlist rng) in
    match (Simc.levelize raw, Simc.levelize raw) with
    | Ok a, Ok b -> Alcotest.(check (array int)) "same ranks" a b
    | _ -> Alcotest.fail "levelize failed on a frozen netlist"
  done

let test_levelize_rejects_cycle () =
  let rc name kind inputs output =
    {
      Netlist.Raw.rc_name = name;
      rc_kind = kind;
      rc_inputs = inputs;
      rc_output = output;
      rc_clock_domain = -1;
      rc_reset_value = false;
    }
  in
  let raw =
    {
      Netlist.Raw.r_name = "cyclic";
      r_num_nets = 4;
      r_cells =
        [|
          rc "g0" Cell.Kind.And2 [| 0; 3 |] 1;
          rc "g1" Cell.Kind.Or2 [| 1; 0 |] 2;
          rc "g2" Cell.Kind.Buf [| 2 |] 3;
        |];
      r_inputs = [ { Netlist.Raw.rp_name = "a"; rp_nets = [| 0 |] } ];
      r_outputs = [ { Netlist.Raw.rp_name = "y"; rp_nets = [| 2 |] } ];
    }
  in
  match Simc.levelize raw with
  | Ok _ -> Alcotest.fail "combinational cycle accepted"
  | Error msg ->
    let contains needle hay =
      let nlen = String.length needle and hl = String.length hay in
      let rec go i = i + nlen <= hl && (String.sub hay i nlen = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names the problem" true (contains "combinational cycle" msg);
    Alcotest.(check bool)
      (Printf.sprintf "names cells on the cycle (%s)" msg)
      true
      (contains "g0" msg && contains "g1" msg && contains "g2" msg)

(* --- golden VCD through the Simc lane view --- *)

let golden_path name =
  if Sys.file_exists (Filename.concat "golden" name) then Filename.concat "golden" name
  else Filename.concat (Filename.concat "test" "golden") name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_vcd_via_simc () =
  let nl = Example_circuits.pipelined_adder () in
  let s = Simc.create nl in
  let out =
    Vcd.of_engine_run
      (module Simc.Lane)
      (Simc.lane_view s 7) ~cycles:6
      ~stimulus:(fun c -> [ ("a", bv 2 (c land 3)); ("b", bv 2 ((c * 2 + 1) land 3)) ])
  in
  let expected = read_file (golden_path "pipelined_adder.vcd") in
  Alcotest.(check string) "byte-for-byte vs golden/pipelined_adder.vcd" expected out

(* --- zero allocation in the dispatch loop --- *)

let alloc_of f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_zero_allocation_dispatch () =
  let nl = Example_circuits.pipelined_adder () in
  let s = Simc.create nl in
  let o_net = (Netlist.find_output nl "o").Netlist.port_nets.(0) in
  let wa = [| 0; 0 |] and wb = [| 0; 0 |] in
  let sink = ref 0 in
  let run n =
    for i = 1 to n do
      wa.(0) <- i;
      wa.(1) <- i lsr 1;
      wb.(0) <- i * 3;
      Simc.set_input_words s "a" wa;
      Simc.set_input_words s "b" wb;
      Simc.step s;
      sink := !sink lxor Simc.net_word s o_net
    done
  in
  run 100 (* warm-up *);
  let a1 = alloc_of (fun () -> run 1000) in
  let a2 = alloc_of (fun () -> run 2000) in
  ignore (Sys.opaque_identity !sink);
  (* equal allocation for 1000 and 2000 cycles = zero words per cycle *)
  Alcotest.(check (float 0.0)) "allocation independent of cycle count" a1 a2

(* --- unit tests --- *)

let test_program_shrinks () =
  (* a buf/tie-heavy netlist: the optimizer collapses everything *)
  let b = B.create "wires" in
  let a = B.add_input b "a" 1 in
  let n1 = B.add_cell b Cell.Kind.Buf [| a.(0) |] in
  let n2 = B.add_cell b Cell.Kind.Not [| n1 |] in
  let n3 = B.add_cell b Cell.Kind.Not [| n2 |] in
  let t1 = B.add_cell b Cell.Kind.Tie1 [||] in
  let n4 = B.add_cell b Cell.Kind.And2 [| n3; t1 |] in
  B.add_output b "y" [| n4 |];
  let nl = B.finish b in
  let cons = Simc.create ~profile:true nl in
  let opt = Simc.create nl in
  Alcotest.(check int) "conservative = all comb cells" 5 (Simc.program_length cons);
  Alcotest.(check int) "optimized folds wires and constants" 0 (Simc.program_length opt);
  (* and it still computes: y = a *)
  List.iter
    (fun v ->
      Simc.set_input_all opt "a" (bv 1 v);
      Simc.settle opt;
      Alcotest.(check bool) "y = a" (v = 1) (Simc.net opt ~lane:3 n4))
    [ 0; 1; 0 ]

let test_validation () =
  let s = Simc.create (Example_circuits.pipelined_adder ()) in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Simc.set_input: port a has width 2, value has width 3") (fun () ->
      Simc.set_input s ~lane:0 "a" (bv 3 0));
  (match Simc.set_input s ~lane:Simc.lanes "a" (bv 2 0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range lane accepted");
  match Simc.sp s 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sp without profiling accepted"

let test_snapshot_restore () =
  let nl = Example_circuits.lfsr4 () in
  let s = Simc.create nl in
  let drive c =
    Simc.set_input_all s "enable" (bv 1 (if c land 3 = 0 then 0 else 1));
    Simc.step s
  in
  for c = 0 to 9 do
    drive c
  done;
  let snap = Simc.snapshot s in
  let trace () =
    List.init 8 (fun c ->
        drive (10 + c);
        Simc.output_words s "q")
  in
  let first = trace () in
  Simc.restore s snap;
  Alcotest.(check int) "cycle restored" 10 (Simc.cycle s);
  let second = trace () in
  List.iter2
    (fun a b -> Alcotest.(check (array int)) "replay is bit-identical" a b)
    first second;
  let other = Simc.create (Example_circuits.dff_chain 3) in
  match Simc.restore other snap with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "cross-netlist snapshot accepted"

let test_active_mask_restricts_counters () =
  let nl = Example_circuits.dff_chain 1 in
  let s = Simc.create ~profile:true nl in
  Simc.set_input_words s "d" [| 0b111 |];
  Simc.set_active_mask s 0b111;
  Simc.step s;
  Simc.step s;
  Alcotest.(check int) "samples = active lanes x cycles" 6 (Simc.samples s);
  let d_net = (Netlist.find_input nl "d").Netlist.port_nets.(0) in
  Alcotest.(check int) "ones only in active lanes" 6 (Simc.ones_count s d_net);
  Alcotest.(check (float 1e-9)) "sp = 1 over active lanes" 1.0 (Simc.sp s d_net)

let () =
  Alcotest.run "simc"
    [
      ( "differential",
        [
          prop_differential_random_netlists;
          Alcotest.test_case "example circuits" `Quick test_differential_examples;
        ] );
      ( "levelizer",
        [
          prop_levelize_monotone;
          Alcotest.test_case "deterministic" `Quick test_levelize_deterministic;
          Alcotest.test_case "rejects combinational cycles" `Quick test_levelize_rejects_cycle;
        ] );
      ( "engine-generic",
        [ Alcotest.test_case "golden vcd via lane view" `Quick test_golden_vcd_via_simc ] );
      ( "dispatch",
        [ Alcotest.test_case "zero allocation" `Quick test_zero_allocation_dispatch ] );
      ( "unit",
        [
          Alcotest.test_case "program shrinks" `Quick test_program_shrinks;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
          Alcotest.test_case "active mask" `Quick test_active_mask_restricts_counters;
        ] );
    ]
