(* Tests for the embench-like workloads: all kernels compile, run to
   completion, self-check deterministically, and agree between functional
   and gate-level backends. *)

let functional () = Machine.create ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional ()

let run_bench m (b : Workload.benchmark) =
  Machine.reset m;
  let prog = Minic.assemble (Minic.compile b.Workload.program) in
  match Machine.run ~max_instructions:3_000_000 m prog with
  | Machine.Exited 0 -> Bitvec.to_int (Machine.mem m Workload.checksum_address)
  | o -> Alcotest.failf "%s did not exit cleanly: %a" b.Workload.name Machine.pp_outcome o

let test_all_run () =
  let m = functional () in
  List.iter
    (fun b ->
      let c1 = run_bench m b in
      let c2 = run_bench m b in
      Alcotest.(check int) (b.Workload.name ^ " deterministic") c1 c2)
    Workload.all

let test_known_checksums () =
  let m = functional () in
  (* independently computable kernels *)
  Alcotest.(check int) "primecount" 30 (run_bench m (Workload.find "primecount"));
  (* nsort: sorted (k*17 mod 23) values, weighted checksum *)
  let sorted = List.sort compare (List.init 20 (fun k -> k * 17 mod 23)) in
  let expect =
    (List.mapi (fun idx x -> (idx + 1) * x) sorted |> List.fold_left ( + ) 0) land 0xffff
  in
  Alcotest.(check int) "nsort" expect (run_bench m (Workload.find "nsort"));
  (* huff round-trips: checksum is the sum of the symbols *)
  let expect = List.fold_left ( + ) 0 (List.init 24 (fun k -> k * 11 mod 16)) in
  Alcotest.(check int) "huff" expect (run_bench m (Workload.find "huff"));
  (* crc vs an OCaml reference implementation *)
  let crc_ref =
    let crc = ref 0xFFFF in
    List.iter
      (fun d ->
        crc := !crc lxor (d lsl 8);
        for _ = 1 to 8 do
          if !crc land 0x8000 <> 0 then crc := ((!crc lsl 1) lxor 0x1021) land 0xFFFF
          else crc := (!crc lsl 1) land 0xFFFF
        done)
      (List.init 32 (fun k -> (k * 7) + (k * k mod 13) land 0xff));
    !crc
  in
  Alcotest.(check int) "crc" crc_ref (run_bench m (Workload.find "crc"))

let test_matmult_reference () =
  let m = functional () in
  let a = Array.init 25 (fun k -> (k mod 7) + 1) in
  let b = Array.init 25 (fun k -> (k mod 5) + 2) in
  let sum = ref 0 in
  for r = 0 to 4 do
    for c = 0 to 4 do
      let s = ref 0 in
      for k = 0 to 4 do
        s := !s + (a.((r * 5) + k) * b.((k * 5) + c))
      done;
      sum := !sum + !s
    done
  done;
  Alcotest.(check int) "matmult" (!sum land 0xFFFF) (run_bench m (Workload.find "matmult"))

let test_minver_inverts () =
  (* run minver and verify A * inv(A) ~ I using the memory contents *)
  let m = functional () in
  ignore (run_bench m Workload.minver);
  let fmt = Fpu_format.binary16 in
  (* globals: out @32, a @33..41, inv @42..50 *)
  let inv r c =
    Fpu_format.to_float fmt (Bitvec.create ~width:16 (Bitvec.to_int (Machine.mem m (42 + (r * 3) + c))))
  in
  let orig = [| [| 4.0; 2.0; 1.0 |]; [| 2.0; 5.0; 3.0 |]; [| 1.0; 3.0; 6.0 |] |] in
  for r = 0 to 2 do
    for c = 0 to 2 do
      let dot = ref 0.0 in
      for k = 0 to 2 do
        dot := !dot +. (orig.(r).(k) *. inv k c)
      done;
      let expect = if r = c then 1.0 else 0.0 in
      Alcotest.(check bool)
        (Printf.sprintf "A*inv[%d,%d] ~ %g (got %g)" r c expect !dot)
        true
        (Float.abs (!dot -. expect) < 0.15)
    done
  done

let test_float_kernel_flags () =
  Alcotest.(check bool) "minver flagged float-heavy" true Workload.minver.Workload.float_heavy;
  Alcotest.(check bool) "crc not float-heavy" false (Workload.find "crc").Workload.float_heavy

let test_netlist_agreement () =
  let mf = functional () in
  let mn =
    Machine.create
      ~alu:(Machine.Alu_netlist (Alu.netlist ~width:16 ()))
      ~fpu:(Machine.Fpu_netlist (Fpu.netlist ())) ()
  in
  (* gate-level execution is slow: check a fast int kernel and the FP
     minver kernel *)
  List.iter
    (fun name ->
      let b = Workload.find name in
      Alcotest.(check int) (name ^ " agrees on netlist backend") (run_bench mf b) (run_bench mn b))
    [ "crc"; "minver" ]

let test_new_kernels_reference () =
  let m = functional () in
  (* slre: occurrences of a b* a c in the text, verified by an OCaml regex-free
     reference *)
  let text = "abacabadabacabaeabacabadabacabafabacabad" in
  let matches_at s =
    (* a b* a c *)
    let n = String.length text in
    s < n && text.[s] = 'a'
    && (let rec try_b t =
          (* t = position after consumed b's *)
          if t + 1 < n && text.[t] = 'a' && text.[t + 1] = 'c' then true
          else if t < n && text.[t] = 'b' then try_b (t + 1)
          else false
        in
        try_b (s + 1))
  in
  let expect = List.length (List.filter matches_at (List.init 40 (fun s -> s))) in
  Alcotest.(check int) "slre reference" expect (run_bench m (Workload.find "slre"));
  (* gf256: reference Horner evaluation over GF(2^8) *)
  let gfmul x y =
    let acc = ref 0 and x = ref x and y = ref y in
    while !y <> 0 do
      if !y land 1 <> 0 then acc := !acc lxor !x;
      x := !x lsl 1;
      if !x land 0x100 <> 0 then x := !x lxor 0x11D;
      y := !y lsr 1
    done;
    !acc
  in
  let poly = List.init 16 (fun k -> ((k * 37) + 11) mod 256) in
  let check = ref 0 in
  for x = 2 to 7 do
    let acc = List.fold_left (fun acc c -> gfmul acc x lxor c) 0 poly in
    check := !check lxor acc
  done;
  Alcotest.(check int) "gf256 reference" !check (run_bench m (Workload.find "gf256"));
  (* statemate terminates with a plausible checksum *)
  let v = run_bench m (Workload.find "statemate") in
  Alcotest.(check bool) "statemate nonzero" true (v >= 0)

let test_c_source_kernels () =
  let m = functional () in
  (* cubic: independently computable *)
  let icbrt n =
    let rec go lo hi = if lo >= hi then lo else
      let mid = (lo + hi + 1) / 2 in
      if mid * mid * mid <= n then go mid hi else go lo (mid - 1)
    in
    go 0 32
  in
  let expect =
    List.fold_left (fun acc t -> ((acc * 31) + icbrt t) land 0xFFFF) 0
      [ 27; 125; 1000; 1331; 4913; 8000; 12167; 21952 ]
  in
  Alcotest.(check int) "cubic reference" expect (run_bench m (Workload.find "cubic"));
  (* mont: powmod reference *)
  let powmod b e m =
    let rec go r b e = if e = 0 then r else
      go (if e land 1 = 1 then r * b mod m else r) (b * b mod m) (e lsr 1)
    in
    go 1 (b mod m) e
  in
  let acc = List.fold_left (fun acc base -> (acc lsl 1) lxor powmod base 29 113) 0 [2;3;4;5;6;7;8;9] in
  Alcotest.(check int) "mont reference" (acc land 0xFFFF) (run_bench m (Workload.find "mont"))

let test_unique_names () =
  let names = List.map (fun b -> b.Workload.name) Workload.all in
  Alcotest.(check int) "sixteen benchmarks" 16 (List.length names);
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "workload"
    [
      ( "kernels",
        [
          Alcotest.test_case "all run deterministically" `Quick test_all_run;
          Alcotest.test_case "known checksums" `Quick test_known_checksums;
          Alcotest.test_case "matmult reference" `Quick test_matmult_reference;
          Alcotest.test_case "minver inverts" `Quick test_minver_inverts;
          Alcotest.test_case "float flags" `Quick test_float_kernel_flags;
          Alcotest.test_case "netlist agreement" `Slow test_netlist_agreement;
          Alcotest.test_case "new kernels vs references" `Quick test_new_kernels_reference;
          Alcotest.test_case "C-source kernels vs references" `Quick test_c_source_kernels;
          Alcotest.test_case "unique names" `Quick test_unique_names;
        ] );
    ]
