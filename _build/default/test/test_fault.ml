(* Tests for failure-model instrumentation: Eq. (2)/(3) semantics on the
   paper's adder, shadow replicas, and the Table 2 trace-generation flow. *)

let adder = Example_circuits.pipelined_adder ()
let bv w v = Bitvec.create ~width:w v

let setup_spec ?(constant = Fault.C1) ?(activation = Fault.Any_transition) () =
  {
    Fault.start_dff = "$4";
    end_dff = "$10";
    kind = Fault.Setup_violation;
    constant;
    activation;
  }

let hold_spec ?(constant = Fault.C1) ?(activation = Fault.Any_transition) () =
  {
    Fault.start_dff = "$1";
    end_dff = "$9";
    kind = Fault.Hold_violation;
    constant;
    activation;
  }

(* Drive the failing netlist and the golden adder side by side; return the
   list of cycles (input pairs) where outputs diverge. *)
let divergences spec stimulus =
  let faulty = Fault.failing_netlist adder spec in
  let sim_f = Sim.create faulty and sim_g = Sim.create adder in
  let diffs = ref [] in
  List.iteri
    (fun i (a, b) ->
      Sim.set_input sim_f "a" (bv 2 a);
      Sim.set_input sim_f "b" (bv 2 b);
      Sim.set_input sim_g "a" (bv 2 a);
      Sim.set_input sim_g "b" (bv 2 b);
      Sim.step sim_f;
      Sim.step sim_g;
      if not (Bitvec.equal (Sim.output sim_f "o") (Sim.output sim_g "o")) then
        diffs := i :: !diffs)
    stimulus;
  List.rev !diffs

let test_setup_fault_fires_on_transition () =
  (* b[1] ($4) transitions 0->1 at the third input; the setup fault on
     $4~>$10 corrupts o[1] in the following cycle *)
  let stim = [ (0, 0); (0, 0); (0, 2); (0, 2); (0, 2) ] in
  let diffs = divergences (setup_spec ~constant:Fault.C0 ()) stim in
  Alcotest.(check bool) "diverges after transition" true (List.mem 3 diffs)

let test_setup_fault_silent_when_stable () =
  (* constant inputs: after the initial settling transition, no divergence *)
  let stim = List.init 8 (fun _ -> (1, 2)) in
  let diffs = divergences (setup_spec ~constant:Fault.C1 ()) stim in
  (* b=2 sets $4=1 at cycle 1, a 0->1 transition; only early cycles may
     diverge *)
  List.iter (fun i -> Alcotest.(check bool) "late cycles clean" true (i <= 2)) diffs

let test_setup_c1_vs_c0 () =
  (* with C=1 and a transition making o[1]=1 anyway, the fault can hide *)
  let stim = [ (0, 0); (0, 2); (0, 2) ] in
  let d1 = divergences (setup_spec ~constant:Fault.C1 ()) stim in
  let d0 = divergences (setup_spec ~constant:Fault.C0 ()) stim in
  (* o = 0+2 = 2 -> o[1]=1: C=1 agrees (hidden), C=0 corrupts *)
  Alcotest.(check (list int)) "C=1 hidden" [] d1;
  Alcotest.(check bool) "C=0 visible" true (d0 <> [])

let test_rising_edge_activation () =
  let rising = setup_spec ~constant:Fault.C0 ~activation:Fault.Rising_edge () in
  let falling = setup_spec ~constant:Fault.C0 ~activation:Fault.Falling_edge () in
  (* $4 = b[1] goes 0 -> 1 at input 2 (rising); never falls *)
  let stim = [ (0, 0); (0, 2); (0, 2); (0, 2) ] in
  Alcotest.(check bool) "rising fires" true (divergences rising stim <> []);
  Alcotest.(check (list int)) "falling silent" [] (divergences falling stim);
  (* now a 1 -> 0 transition of $4, with the corrupted capture replacing a
     sum whose bit 1 is set (2 + 0) so that C=0 is visible *)
  let stim_fall = [ (0, 2); (0, 2); (2, 0); (0, 0) ] in
  Alcotest.(check bool) "falling fires on fall" true (divergences falling stim_fall <> [])

let test_hold_fault_semantics () =
  (* hold on $1~>$9: fault fires when a[0] changes between consecutive
     cycles (X(t) <> X(t+1)) *)
  let stim = [ (1, 0); (0, 0); (0, 0); (1, 0); (1, 0) ] in
  let diffs = divergences (hold_spec ~constant:Fault.C1 ()) stim in
  Alcotest.(check bool) "hold fault fires" true (diffs <> []);
  (* constant a[0]: silent after reset settles *)
  let stim_stable = List.init 6 (fun _ -> (1, 2)) in
  let diffs = divergences (hold_spec ~constant:Fault.C1 ()) stim_stable in
  List.iter (fun i -> Alcotest.(check bool) "stable clean" true (i <= 1)) diffs

let test_self_loop_metastable () =
  (* a path from a DFF to itself: Y always produces C *)
  let lfsr = Example_circuits.lfsr4 () in
  let spec =
    {
      Fault.start_dff = "s0";
      end_dff = "s0";
      kind = Fault.Setup_violation;
      constant = Fault.C0;
      activation = Fault.Any_transition;
    }
  in
  let faulty = Fault.failing_netlist lfsr spec in
  let sim = Sim.create faulty in
  Sim.set_input_bit sim "enable" 0 true;
  for _ = 1 to 5 do
    Sim.step sim
  done;
  Alcotest.(check bool) "bit 0 stuck at 0" false
    (Bitvec.bit (Sim.output sim "q") 0)

let test_random_constant_port () =
  let faulty = Fault.failing_netlist adder (setup_spec ~constant:Fault.C_random ()) in
  let p = Netlist.find_input faulty Fault.random_port in
  Alcotest.(check int) "1-bit random port" 1 (Array.length p.port_nets)

let test_spec_validation () =
  Alcotest.check_raises "not a dff" (Invalid_argument "Fault: cell $5 is not a DFF")
    (fun () ->
      ignore (Fault.failing_netlist adder { (setup_spec ()) with Fault.start_dff = "$5" }));
  Alcotest.check_raises "unknown cell" Not_found (fun () ->
      ignore (Fault.failing_netlist adder { (setup_spec ()) with Fault.end_dff = "zz" }))

let test_shadow_structure () =
  let inst = Fault.instrument_shadow adder (setup_spec ()) in
  (* original ports unchanged, shadow port added *)
  let nl = inst.Fault.netlist in
  ignore (Netlist.find_output nl "o");
  ignore (Netlist.find_output nl "o_s");
  (* only o[1] is influenced by $10 *)
  Alcotest.(check int) "one shadowed bit" 1 (List.length inst.Fault.shadow_of);
  ignore (Netlist.find_cell nl "$10_s");
  Alcotest.check_raises "$9 not copied" Not_found (fun () ->
      ignore (Netlist.find_cell nl "$9_s"));
  (* the original circuit is untouched: outputs equal the golden adder *)
  let sim = Sim.create nl and gold = Sim.create adder in
  for a = 0 to 3 do
    for b = 0 to 3 do
      Sim.set_input sim "a" (bv 2 a);
      Sim.set_input sim "b" (bv 2 b);
      Sim.set_input gold "a" (bv 2 a);
      Sim.set_input gold "b" (bv 2 b);
      Sim.step sim;
      Sim.step gold;
      Alcotest.(check bool) "original outputs intact" true
        (Bitvec.equal (Sim.output sim "o") (Sim.output gold "o"))
    done
  done

let test_table2_trace_generation () =
  (* the paper's Table 2 flow: instrument setup $4~>$10 with C=1, ask the
     formal engine for a trace where o[1] <> o_s[1] *)
  let inst = Fault.instrument_shadow adder (setup_spec ~constant:Fault.C1 ()) in
  match
    Formal.check_cover ~watch:inst.Fault.watch inst.Fault.netlist ~cover:inst.Fault.cover
  with
  | Formal.Trace_found t ->
    Alcotest.(check bool) "trace covers on replay" true
      (Formal.Trace.covers inst.Fault.netlist t inst.Fault.cover);
    Alcotest.(check bool) "short trace" true (t.Formal.Trace.cycles <= 4)
  | _ -> Alcotest.fail "expected a Table-2-style trace"

let test_hold_trace_generation () =
  let inst = Fault.instrument_shadow adder (hold_spec ~constant:Fault.C0 ()) in
  match Formal.check_cover inst.Fault.netlist ~cover:inst.Fault.cover with
  | Formal.Trace_found t ->
    Alcotest.(check bool) "covers" true
      (Formal.Trace.covers inst.Fault.netlist t inst.Fault.cover)
  | _ -> Alcotest.fail "expected hold trace"

let test_unreachable_fault () =
  (* C=1 fault on a bit that is 1 whenever the fault fires would be
     unprovable; construct one: hold fault on $1~>$9 with C picked equal to
     the correct value can still diverge, so instead check a fault whose
     cone is output-reachable but constrained inputs forbid activation *)
  let inst = Fault.instrument_shadow adder (setup_spec ~constant:Fault.C1 ()) in
  let assumes =
    [ Formal.port_equals inst.Fault.netlist "b" (bv 2 0) ]
  in
  (* $4 samples b[1]=0 forever: no transition, fault never activates *)
  match Formal.check_cover ~assumes inst.Fault.netlist ~cover:inst.Fault.cover with
  | Formal.Unreachable -> ()
  | _ -> Alcotest.fail "expected UR outcome"

(* Property: a failing netlist with Eq.-2 semantics diverges from golden
   only in cycles following a transition of the start DFF. *)
let prop_eq2_only_after_transition =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"Eq.2 divergence implies prior transition"
       (QCheck.make
          ~print:(fun l ->
            String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) l))
          QCheck.Gen.(list_size (int_range 3 15) (pair (int_bound 3) (int_bound 3))))
       (fun stim ->
         let spec = setup_spec ~constant:Fault.C0 () in
         let faulty = Fault.failing_netlist adder spec in
         let sim_f = Sim.create faulty and sim_g = Sim.create adder in
         (* track $4's output in the golden run to know transitions *)
         let x_vals = ref [] in
         let ok = ref true in
         List.iter
           (fun (a, b) ->
             Sim.set_input sim_f "a" (bv 2 a);
             Sim.set_input sim_f "b" (bv 2 b);
             Sim.set_input sim_g "a" (bv 2 a);
             Sim.set_input sim_g "b" (bv 2 b);
             x_vals := Sim.peek_cell sim_g "$4" :: !x_vals;
             Sim.step sim_f;
             Sim.step sim_g;
             let diverged = not (Bitvec.equal (Sim.output sim_f "o") (Sim.output sim_g "o")) in
             if diverged then begin
               (* X must have transitioned within the last two samples *)
               match !x_vals with
               | x_t :: x_tm1 :: _ -> if x_t = x_tm1 then ok := false
               | _ -> ()  (* too early to judge: reset transient *)
             end)
           stim;
         !ok))

let () =
  Alcotest.run "fault"
    [
      ( "failing netlists",
        [
          Alcotest.test_case "setup fires on transition" `Quick
            test_setup_fault_fires_on_transition;
          Alcotest.test_case "setup silent when stable" `Quick test_setup_fault_silent_when_stable;
          Alcotest.test_case "C=1 vs C=0 visibility" `Quick test_setup_c1_vs_c0;
          Alcotest.test_case "edge-triggered activation" `Quick test_rising_edge_activation;
          Alcotest.test_case "hold semantics" `Quick test_hold_fault_semantics;
          Alcotest.test_case "self-loop metastable" `Quick test_self_loop_metastable;
          Alcotest.test_case "random constant port" `Quick test_random_constant_port;
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
        ] );
      ( "shadow replica",
        [
          Alcotest.test_case "structure" `Quick test_shadow_structure;
          Alcotest.test_case "table 2 trace" `Quick test_table2_trace_generation;
          Alcotest.test_case "hold trace" `Quick test_hold_trace_generation;
          Alcotest.test_case "unreachable fault" `Quick test_unreachable_fault;
        ] );
      ("properties", [ prop_eq2_only_after_transition ]);
    ]
