(* Unit and property tests for the CDCL SAT solver, including a brute-force
   cross-check on random small instances. *)

let check_result = Alcotest.(check (of_pp (fun fmt (r : Sat.result) ->
    Format.pp_print_string fmt
      (match r with Sat.Sat -> "SAT" | Sat.Unsat -> "UNSAT" | Sat.Unknown -> "UNKNOWN"))))

let fresh_vars n =
  let s = Sat.create () in
  let vars = Array.init n (fun _ -> Sat.new_var s) in
  (s, vars)

let test_trivial_sat () =
  let s, v = fresh_vars 1 in
  Sat.add_clause s [ v.(0) ];
  check_result "unit clause" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "model" true (Sat.value s v.(0))

let test_trivial_unsat () =
  let s, v = fresh_vars 1 in
  Sat.add_clause s [ v.(0) ];
  Sat.add_clause s [ -v.(0) ];
  check_result "x and not x" Sat.Unsat (Sat.solve s)

let test_empty_clause () =
  let s, _ = fresh_vars 1 in
  Sat.add_clause s [];
  check_result "empty clause" Sat.Unsat (Sat.solve s)

let test_no_clauses () =
  let s, _ = fresh_vars 3 in
  check_result "no constraints" Sat.Sat (Sat.solve s)

let test_implication_chain () =
  let s, v = fresh_vars 20 in
  for i = 0 to 18 do
    Sat.add_clause s [ -v.(i); v.(i + 1) ]
  done;
  Sat.add_clause s [ v.(0) ];
  check_result "chain" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "chain forces last" true (Sat.value s v.(19))

let test_pigeonhole () =
  (* 4 pigeons, 3 holes: classic small UNSAT instance. *)
  let pigeons = 4 and holes = 3 in
  let s = Sat.create () in
  let x = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.new_var s)) in
  for p = 0 to pigeons - 1 do
    Sat.add_clause s (Array.to_list x.(p))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Sat.add_clause s [ -x.(p1).(h); -x.(p2).(h) ]
      done
    done
  done;
  check_result "pigeonhole 4-3" Sat.Unsat (Sat.solve s)

let test_assumptions () =
  let s, v = fresh_vars 2 in
  Sat.add_clause s [ -v.(0); v.(1) ];
  check_result "assume x0" Sat.Sat (Sat.solve ~assumptions:[ v.(0) ] s);
  Alcotest.(check bool) "propagated" true (Sat.value s v.(1));
  check_result "conflicting assumptions" Sat.Unsat
    (Sat.solve ~assumptions:[ v.(0); -v.(1) ] s);
  check_result "solver reusable after assumption unsat" Sat.Sat (Sat.solve s)

let test_incremental () =
  let s, v = fresh_vars 3 in
  Sat.add_clause s [ v.(0); v.(1) ];
  check_result "first solve" Sat.Sat (Sat.solve s);
  Sat.add_clause s [ -v.(0) ];
  Sat.add_clause s [ -v.(1) ];
  check_result "after more clauses" Sat.Unsat (Sat.solve s)

let test_budget () =
  (* A hard instance with a tiny conflict budget must return Unknown.
     Pigeonhole 8-7 takes well over 16 conflicts. *)
  let pigeons = 8 and holes = 7 in
  let s = Sat.create () in
  let x = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.new_var s)) in
  for p = 0 to pigeons - 1 do
    Sat.add_clause s (Array.to_list x.(p))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Sat.add_clause s [ -x.(p1).(h); -x.(p2).(h) ]
      done
    done
  done;
  check_result "budget exhausted" Sat.Unknown (Sat.solve ~max_conflicts:16 s)

let test_xor_chain () =
  (* x1 xor x2 xor ... xor x8 = 1, all equal pairs: satisfiable parity. *)
  let s, v = fresh_vars 3 in
  (* encode x0 xor x1 = x2 *)
  Sat.add_clause s [ -v.(0); -v.(1); -v.(2) ];
  Sat.add_clause s [ v.(0); v.(1); -v.(2) ];
  Sat.add_clause s [ v.(0); -v.(1); v.(2) ];
  Sat.add_clause s [ -v.(0); v.(1); v.(2) ];
  Sat.add_clause s [ v.(2) ];
  check_result "xor encoding" Sat.Sat (Sat.solve s);
  Alcotest.(check bool) "xor holds" true (Sat.value s v.(0) <> Sat.value s v.(1))

let test_dimacs () =
  let s, v = fresh_vars 3 in
  Sat.add_clause s [ v.(0); -v.(1) ];
  Sat.add_clause s [ v.(1); v.(2) ];
  let d = Sat.to_dimacs s in
  Alcotest.(check string) "dimacs text" "p cnf 3 2\n-2 1 0\n2 3 0\n" d;
  (* incremental additions after a solve still export correctly (unit
     clauses are absorbed by root-level propagation, so add a binary one) *)
  ignore (Sat.solve s);
  Sat.add_clause s [ -v.(2); -v.(0) ];
  let lines = String.split_on_char '\n' (Sat.to_dimacs s) in
  Alcotest.(check string) "updated header" "p cnf 3 3" (List.hd lines)

(* Brute-force cross-check on random instances. *)

let brute_force nvars clauses =
  let rec go assignment v =
    if v > nvars then
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let value = List.nth assignment (abs l - 1) in
              if l > 0 then value else not value)
            clause)
        clauses
    else go (assignment @ [ true ]) (v + 1) || go (assignment @ [ false ]) (v + 1)
  in
  go [] 1

let arb_instance =
  let gen =
    QCheck.Gen.(
      int_range 3 8 >>= fun nvars ->
      int_range 1 30 >>= fun nclauses ->
      let gen_lit = int_range 1 nvars >>= fun v -> oneofl [ v; -v ] in
      list_repeat nclauses (list_size (int_range 1 3) gen_lit) >>= fun clauses ->
      return (nvars, clauses))
  in
  QCheck.make
    ~print:(fun (n, cs) ->
      Printf.sprintf "vars=%d clauses=[%s]" n
        (String.concat "; "
           (List.map (fun c -> String.concat "," (List.map string_of_int c)) cs)))
    gen

let prop_matches_brute_force =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"solver agrees with brute force" arb_instance
       (fun (nvars, clauses) ->
         let s = Sat.create () in
         for _ = 1 to nvars do
           ignore (Sat.new_var s)
         done;
         List.iter (Sat.add_clause s) clauses;
         let expect = brute_force nvars clauses in
         match Sat.solve s with
         | Sat.Sat ->
           expect
           && List.for_all
                (fun clause ->
                  List.exists
                    (fun l -> if l > 0 then Sat.value s l else not (Sat.value s (-l)))
                    clause)
                clauses
         | Sat.Unsat -> not expect
         | Sat.Unknown -> false))

let prop_model_under_assumptions =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"assumptions respected in model" arb_instance
       (fun (nvars, clauses) ->
         let s = Sat.create () in
         for _ = 1 to nvars do
           ignore (Sat.new_var s)
         done;
         List.iter (Sat.add_clause s) clauses;
         match Sat.solve ~assumptions:[ 1; -2 ] s with
         | Sat.Sat -> Sat.value s 1 && not (Sat.value s 2)
         | Sat.Unsat | Sat.Unknown -> true))

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "no clauses" `Quick test_no_clauses;
          Alcotest.test_case "implication chain" `Quick test_implication_chain;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "incremental" `Quick test_incremental;
          Alcotest.test_case "conflict budget" `Quick test_budget;
          Alcotest.test_case "xor chain" `Quick test_xor_chain;
          Alcotest.test_case "dimacs export" `Quick test_dimacs;
        ] );
      ("properties", [ prop_matches_brute_force; prop_model_under_assumptions ]);
    ]
