(* Tests for the netlist optimizer and the formal equivalence checker
   that validates it. *)

module B = Netlist.Builder

let contains_kind nl kind =
  List.mem_assoc kind (Netlist.stats nl)

let test_constant_folding () =
  (* y = (x AND 0) OR (x XOR x) OR z  ==>  y = z *)
  let b = B.create "fold" in
  let x = B.add_input b "x" 1 in
  let z = B.add_input b "z" 1 in
  let zero = B.add_cell b Cell.Kind.Tie0 [||] in
  let a1 = B.add_cell b Cell.Kind.And2 [| x.(0); zero |] in
  let a2 = B.add_cell b Cell.Kind.Xor2 [| x.(0); x.(0) |] in
  let o1 = B.add_cell b Cell.Kind.Or2 [| a1; a2 |] in
  let o2 = B.add_cell b Cell.Kind.Or2 [| o1; z.(0) |] in
  B.add_output b "y" [| o2 |];
  let nl = B.finish b in
  let opt, stats = Netlist_opt.optimize nl in
  Alcotest.(check bool) "folded some" true (stats.Netlist_opt.folded >= 3);
  Alcotest.(check bool) "shrank" true
    (stats.Netlist_opt.cells_after < stats.Netlist_opt.cells_before);
  (* semantics preserved: y = z for all inputs *)
  let sim = Sim.create opt in
  List.iter
    (fun (xv, zv) ->
      Sim.set_input_bit sim "x" 0 xv;
      Sim.set_input_bit sim "z" 0 zv;
      Sim.settle sim;
      Alcotest.(check bool) "y = z" zv (Bitvec.bit (Sim.output sim "y") 0))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_buffer_elimination () =
  let b = B.create "bufs" in
  let x = B.add_input b "x" 1 in
  let b1 = B.add_cell b Cell.Kind.Buf [| x.(0) |] in
  let b2 = B.add_cell b Cell.Kind.Buf [| b1 |] in
  let b3 = B.add_cell b Cell.Kind.Buf [| b2 |] in
  let n1 = B.add_cell b Cell.Kind.Not [| b3 |] in
  B.add_output b "y" [| n1 |];
  let nl = B.finish b in
  let opt, _ = Netlist_opt.optimize nl in
  Alcotest.(check bool) "no buffers left" false (contains_kind opt Cell.Kind.Buf);
  Alcotest.(check int) "single NOT remains" 1 (Netlist.num_cells opt)

let test_dead_code () =
  let b = B.create "dead" in
  let x = B.add_input b "x" 2 in
  let used = B.add_cell ~name:"used" b Cell.Kind.And2 [| x.(0); x.(1) |] in
  let _dead1 = B.add_cell ~name:"dead1" b Cell.Kind.Or2 [| x.(0); x.(1) |] in
  let dead2 = B.add_cell ~name:"dead2" b Cell.Kind.Dff ~clock_domain:0 [| x.(0) |] in
  ignore dead2;
  B.add_output b "y" [| used |];
  let nl = B.finish b in
  let opt, stats = Netlist_opt.optimize nl in
  Alcotest.(check int) "only the used gate" 1 (Netlist.num_cells opt);
  Alcotest.(check bool) "dead counted" true (stats.Netlist_opt.dead_removed >= 2);
  ignore (Netlist.find_cell opt "used")

let test_mux_folding () =
  let b = B.create "mux" in
  let x = B.add_input b "x" 2 in
  let one = B.add_cell b Cell.Kind.Tie1 [||] in
  let m = B.add_cell b Cell.Kind.Mux2 [| x.(0); x.(1); one |] in
  B.add_output b "y" [| m |];
  let nl = B.finish b in
  let opt, _ = Netlist_opt.optimize nl in
  Alcotest.(check bool) "mux folded away" false (contains_kind opt Cell.Kind.Mux2);
  let sim = Sim.create opt in
  Sim.set_input sim "x" (Bitvec.create ~width:2 2);
  Sim.settle sim;
  Alcotest.(check int) "selects input 1" 1 (Bitvec.to_int (Sim.output sim "y"))

let test_fault_instrumentation_cleanup () =
  (* instrumented netlists carry tie cells and dead shadow logic once the
     shadow ports are dropped; optimizing the failing netlist must preserve
     its behaviour *)
  let adder = Example_circuits.pipelined_adder () in
  let faulty =
    Fault.failing_netlist adder
      {
        Fault.start_dff = "$4";
        end_dff = "$10";
        kind = Fault.Setup_violation;
        constant = Fault.C0;
        activation = Fault.Any_transition;
      }
  in
  let opt, _ = Netlist_opt.optimize faulty in
  match Formal.check_equivalence faulty opt with
  | Formal.Equivalent -> ()
  | Formal.Different t -> Alcotest.failf "diverges:\n%s" (Formal.Trace.to_string t)
  | _ -> Alcotest.fail "inconclusive"

let test_equivalence_positive () =
  let adder = Example_circuits.pipelined_adder () in
  let opt, _ = Netlist_opt.optimize adder in
  (match Formal.check_equivalence adder opt with
  | Formal.Equivalent -> ()
  | _ -> Alcotest.fail "optimizer broke the adder");
  (* an ALU survives optimization too, proven equivalent *)
  let alu = Alu.netlist ~width:4 () in
  let alu_opt, stats = Netlist_opt.optimize alu in
  Alcotest.(check bool) "alu shrinks a little" true
    (stats.Netlist_opt.cells_after <= stats.Netlist_opt.cells_before);
  match Formal.check_equivalence alu alu_opt with
  | Formal.Equivalent -> ()
  | Formal.Different t -> Alcotest.failf "ALU diverges:\n%s" (Formal.Trace.to_string t)
  | _ -> Alcotest.fail "inconclusive on ALU"

let test_equivalence_negative () =
  (* a failing netlist is NOT equivalent to the healthy one, and the
     counterexample is a genuine distinguishing trace *)
  let adder = Example_circuits.pipelined_adder () in
  let faulty =
    Fault.failing_netlist adder
      {
        Fault.start_dff = "$4";
        end_dff = "$10";
        kind = Fault.Setup_violation;
        constant = Fault.C0;
        activation = Fault.Any_transition;
      }
  in
  match Formal.check_equivalence adder faulty with
  | Formal.Different t -> Alcotest.(check bool) "short witness" true (t.Formal.Trace.cycles <= 5)
  | Formal.Equivalent -> Alcotest.fail "fault declared equivalent"
  | _ -> Alcotest.fail "inconclusive"

let test_equivalence_interface_check () =
  let adder = Example_circuits.pipelined_adder () in
  let chain = Example_circuits.dff_chain 2 in
  match Formal.check_equivalence adder chain with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched interfaces accepted"

(* Property: optimization preserves behaviour on random circuits, verified
   both by simulation and by the formal checker. *)
let prop_optimize_preserves =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"optimize is equivalence-preserving"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000))
       (fun seed ->
         let rng = Random.State.make [| seed |] in
         let b = B.create "rnd" in
         let x = B.add_input b "x" 3 in
         let tie = B.add_cell b (if Random.State.bool rng then Cell.Kind.Tie0 else Cell.Kind.Tie1) [||] in
         let nets = ref [ x.(0); x.(1); x.(2); tie ] in
         for _ = 1 to 6 + Random.State.int rng 10 do
           let pick () = List.nth !nets (Random.State.int rng (List.length !nets)) in
           let kind =
             match Random.State.int rng 8 with
             | 0 -> Cell.Kind.And2
             | 1 -> Cell.Kind.Or2
             | 2 -> Cell.Kind.Xor2
             | 3 -> Cell.Kind.Not
             | 4 -> Cell.Kind.Buf
             | 5 -> Cell.Kind.Mux2
             | 6 -> Cell.Kind.Nand2
             | _ -> Cell.Kind.Dff
           in
           let inputs = Array.init (Cell.Kind.arity kind) (fun _ -> pick ()) in
           let out =
             if Cell.Kind.is_sequential kind then B.add_cell ~clock_domain:0 b kind inputs
             else B.add_cell b kind inputs
           in
           nets := out :: !nets
         done;
         B.add_output b "y" [| List.hd !nets |];
         let nl = B.finish b in
         let opt, _ = Netlist_opt.optimize nl in
         match Formal.check_equivalence ~max_cycles:6 nl opt with
         | Formal.Equivalent | Formal.Bounded_equivalent _ -> true
         | Formal.Different _ -> false
         | Formal.Equiv_timeout -> true))

let () =
  Alcotest.run "netlist_opt"
    [
      ( "optimizer",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "buffer elimination" `Quick test_buffer_elimination;
          Alcotest.test_case "dead code" `Quick test_dead_code;
          Alcotest.test_case "mux folding" `Quick test_mux_folding;
          Alcotest.test_case "fault instrumentation cleanup" `Quick
            test_fault_instrumentation_cleanup;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "positive" `Quick test_equivalence_positive;
          Alcotest.test_case "negative" `Quick test_equivalence_negative;
          Alcotest.test_case "interface check" `Quick test_equivalence_interface_check;
        ] );
      ("properties", [ prop_optimize_preserves ]);
    ]
