(* Tests for the cell library, the SPICE-lite stage model, and the
   reaction-diffusion aging model with its precomputed timing library. *)

let cfg = Aging.default_config
let c28 = Cell.Library.c28

let test_cell_eval () =
  let t = [| true |] and f = [| false |] in
  Alcotest.(check bool) "not" false (Cell.Kind.eval Cell.Kind.Not t);
  Alcotest.(check bool) "buf" true (Cell.Kind.eval Cell.Kind.Buf t);
  Alcotest.(check bool) "tie0" false (Cell.Kind.eval Cell.Kind.Tie0 [||]);
  Alcotest.(check bool) "tie1" true (Cell.Kind.eval Cell.Kind.Tie1 [||]);
  ignore f;
  let tt k = List.map (fun (a, b) -> Cell.Kind.eval k [| a; b |])
      [ (false, false); (false, true); (true, false); (true, true) ]
  in
  Alcotest.(check (list bool)) "and2" [ false; false; false; true ] (tt Cell.Kind.And2);
  Alcotest.(check (list bool)) "or2" [ false; true; true; true ] (tt Cell.Kind.Or2);
  Alcotest.(check (list bool)) "xor2" [ false; true; true; false ] (tt Cell.Kind.Xor2);
  Alcotest.(check (list bool)) "nand2" [ true; true; true; false ] (tt Cell.Kind.Nand2);
  Alcotest.(check (list bool)) "nor2" [ true; false; false; false ] (tt Cell.Kind.Nor2);
  Alcotest.(check (list bool)) "xnor2" [ true; false; false; true ] (tt Cell.Kind.Xnor2);
  (* mux: inputs a, b, s; output = s ? b : a *)
  Alcotest.(check bool) "mux select a" true (Cell.Kind.eval Cell.Kind.Mux2 [| true; false; false |]);
  Alcotest.(check bool) "mux select b" false (Cell.Kind.eval Cell.Kind.Mux2 [| true; false; true |])

let test_cell_eval_errors () =
  Alcotest.check_raises "dff not combinational" (Invalid_argument "Cell.Kind.eval: DFF is sequential")
    (fun () -> ignore (Cell.Kind.eval Cell.Kind.Dff [| true |]));
  Alcotest.check_raises "arity" (Invalid_argument "Cell.Kind.eval: AND2 expects 2 inputs, got 1")
    (fun () -> ignore (Cell.Kind.eval Cell.Kind.And2 [| true |]))

let test_library_sanity () =
  List.iter
    (fun k ->
      let t = Cell.Library.timing c28 k in
      Alcotest.(check bool)
        (Printf.sprintf "%s min <= max" (Cell.Kind.to_string k))
        true
        (t.Cell.tpd_min_ps <= t.Cell.tpd_max_ps))
    Cell.Kind.all;
  let d = Cell.Library.dff c28 in
  Alcotest.(check bool) "dff constraints positive" true
    (d.Cell.setup_ps > 0.0 && d.Cell.hold_ps > 0.0 && d.Cell.clk_to_q_min_ps > 0.0);
  let e = Cell.Library.timing Cell.Library.example Cell.Kind.Xor2 in
  Alcotest.(check (float 1e-9)) "example max 300ps" 300.0 e.Cell.tpd_max_ps

let test_spice_monotone () =
  let e = Cell.Library.electrical c28 Cell.Kind.Xor2 in
  let d0 = Spice.stage_delay_ps e ~vth:e.Cell.vth0 in
  let d1 = Spice.stage_delay_ps e ~vth:(e.Cell.vth0 +. 0.02) in
  let d2 = Spice.stage_delay_ps e ~vth:(e.Cell.vth0 +. 0.04) in
  Alcotest.(check bool) "delay grows with vth" true (d0 < d1 && d1 < d2);
  Alcotest.check_raises "vth above vdd rejected"
    (Invalid_argument "Spice.stage_resistance: vth 0.950 >= vdd 0.900") (fun () ->
      ignore (Spice.stage_resistance e ~vth:0.95))

let test_spice_transient_matches_closed_form () =
  List.iter
    (fun k ->
      let e = Cell.Library.electrical c28 k in
      if e.Cell.cload_ff > 0.0 then begin
        let closed = Spice.stage_delay_ps e ~vth:e.Cell.vth0 in
        let transient = Spice.transient_delay_ps e ~vth:e.Cell.vth0 in
        let err = Float.abs (closed -. transient) /. closed in
        Alcotest.(check bool)
          (Printf.sprintf "%s transient within 1%%" (Cell.Kind.to_string k))
          true (err < 0.01)
      end)
    Cell.Kind.all

let test_degradation_factor () =
  let e = Cell.Library.electrical c28 Cell.Kind.And2 in
  Alcotest.(check (float 1e-9)) "no shift no slowdown" 1.0 (Spice.degradation_factor e ~dvth:0.0);
  Alcotest.(check bool) "positive shift slows" true (Spice.degradation_factor e ~dvth:0.02 > 1.0)

let test_delta_vth_shape () =
  Alcotest.(check (float 1e-12)) "zero at t=0" 0.0 (Aging.delta_vth cfg ~duty:1.0 ~years:0.0);
  let v1 = Aging.delta_vth cfg ~duty:1.0 ~years:1.0 in
  let v10 = Aging.delta_vth cfg ~duty:1.0 ~years:10.0 in
  Alcotest.(check bool) "monotone in time" true (v1 < v10);
  (* reaction-diffusion: ~70% of 10-year damage accrues in year one
     (10^(1/6) ~ 1.47 => v1/v10 = 1/1.468 ~ 0.68) *)
  Alcotest.(check bool) "front-loaded degradation" true (v1 /. v10 > 0.6 && v1 /. v10 < 0.75);
  Alcotest.(check (float 1e-6)) "calibration anchor" cfg.Aging.calibration_dvth_10y v10

let test_duty_of_sp () =
  Alcotest.(check (float 1e-9)) "sp=1 floor" cfg.Aging.duty_floor (Aging.duty_of_sp cfg 1.0);
  Alcotest.(check (float 1e-9)) "sp=0 max stress" 1.0 (Aging.duty_of_sp cfg 0.0);
  Alcotest.(check bool) "monotone decreasing" true
    (Aging.duty_of_sp cfg 0.2 > Aging.duty_of_sp cfg 0.8);
  Alcotest.check_raises "sp out of range" (Invalid_argument "Aging.duty_of_sp: sp 1.5000 outside [0, 1]")
    (fun () -> ignore (Aging.duty_of_sp cfg 1.5))

let test_duty_cycled () =
  let full = Aging.delta_vth cfg ~duty:1.0 ~years:10.0 in
  let half = Aging.delta_vth_duty_cycled cfg ~duty:1.0 ~on_fraction:0.5 ~years:10.0 in
  let always = Aging.delta_vth_duty_cycled cfg ~duty:1.0 ~on_fraction:1.0 ~years:10.0 in
  Alcotest.(check (float 1e-9)) "on_fraction 1 equals continuous stress" full always;
  Alcotest.(check bool) "duty cycling reduces damage" true (half < full);
  (* below the naive t^(1/6) scaling too, thanks to annealing *)
  let naive = Aging.delta_vth cfg ~duty:1.0 ~years:5.0 in
  Alcotest.(check bool) "annealing beats plain half-time stress" true (half < naive);
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Aging.delta_vth_duty_cycled: on_fraction outside [0, 1]") (fun () ->
      ignore (Aging.delta_vth_duty_cycled cfg ~duty:1.0 ~on_fraction:1.5 ~years:1.0))

let test_em_factor () =
  Alcotest.(check (float 1e-9)) "no activity no drift" 1.0
    (Aging.em_delay_factor cfg ~toggle_rate:0.0 ~years:10.0);
  Alcotest.(check (float 1e-9)) "fresh wire" 1.0
    (Aging.em_delay_factor cfg ~toggle_rate:1.0 ~years:0.0);
  let full = Aging.em_delay_factor cfg ~toggle_rate:1.0 ~years:10.0 in
  Alcotest.(check (float 1e-9)) "calibrated 10-year drift" (1.0 +. cfg.Aging.em_drift_10y) full;
  (* Black's current exponent: halving the activity quarters the drift *)
  let half = Aging.em_delay_factor cfg ~toggle_rate:0.5 ~years:10.0 in
  Alcotest.(check (float 1e-9)) "quadratic in activity" (1.0 +. (cfg.Aging.em_drift_10y /. 4.0)) half;
  Alcotest.check_raises "bad rate" (Invalid_argument "Aging.em_delay_factor: toggle_rate outside [0, 1]")
    (fun () -> ignore (Aging.em_delay_factor cfg ~toggle_rate:2.0 ~years:1.0))

let test_recovery () =
  let dvth = 0.02 in
  let r = Aging.recovered cfg ~dvth ~relax_years:1.0 in
  Alcotest.(check bool) "partial recovery" true (r < dvth && r > dvth *. (1.0 -. cfg.Aging.recovery_fraction));
  Alcotest.(check (float 1e-12)) "no relax no recovery" dvth (Aging.recovered cfg ~dvth ~relax_years:0.0)

let lib = Aging.Timing_library.build c28

let test_timing_library_grid () =
  (* interpolated factors track the exact computation closely *)
  List.iter
    (fun (sp, years) ->
      let a = Aging.Timing_library.factor lib Cell.Kind.Xor2 ~sp ~years in
      let b = Aging.Timing_library.factor_exact lib Cell.Kind.Xor2 ~sp ~years in
      Alcotest.(check bool)
        (Printf.sprintf "grid close to exact at sp=%.2f y=%.1f" sp years)
        true
        (Float.abs (a -. b) < 0.002))
    [ (0.13, 10.0); (0.5, 5.0); (0.85, 2.5); (0.0, 10.0); (1.0, 0.0) ]

let test_timing_library_shape () =
  let f_low_sp = Aging.Timing_library.factor lib Cell.Kind.Xor2 ~sp:0.05 ~years:10.0 in
  let f_high_sp = Aging.Timing_library.factor lib Cell.Kind.Xor2 ~sp:0.95 ~years:10.0 in
  Alcotest.(check bool) "idle-at-0 ages faster" true (f_low_sp > f_high_sp);
  Alcotest.(check bool) "all factors >= 1" true (f_high_sp >= 1.0);
  let f0 = Aging.Timing_library.factor lib Cell.Kind.Xor2 ~sp:0.5 ~years:0.0 in
  Alcotest.(check (float 1e-6)) "fresh factor is 1" 1.0 f0;
  (* the paper's Fig. 8 span: 10-year degradation between ~1.9% and ~6% *)
  Alcotest.(check bool) "max degradation around 6%" true
    (f_low_sp > 1.04 && f_low_sp < 1.08);
  Alcotest.(check bool) "min degradation around 1.9%" true
    (f_high_sp > 1.01 && f_high_sp < 1.03)

let test_aged_timing () =
  let fresh = Cell.Library.timing c28 Cell.Kind.Xor2 in
  let aged = Aging.Timing_library.aged_timing lib Cell.Kind.Xor2 ~sp:0.1 ~years:10.0 in
  Alcotest.(check bool) "max delay grows" true (aged.Cell.tpd_max_ps > fresh.Cell.tpd_max_ps);
  Alcotest.(check (float 1e-9)) "min delay untouched" fresh.Cell.tpd_min_ps aged.Cell.tpd_min_ps

(* Properties *)

let arb_sp_years =
  QCheck.make
    ~print:(fun (sp, y) -> Printf.sprintf "sp=%.3f years=%.2f" sp y)
    QCheck.Gen.(pair (float_bound_inclusive 1.0) (float_bound_inclusive 10.0))

let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300 ~name:"factor always >= 1" arb_sp_years (fun (sp, years) ->
           Aging.Timing_library.factor lib Cell.Kind.Nand2 ~sp ~years >= 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300 ~name:"factor monotone in years" arb_sp_years
         (fun (sp, years) ->
           let y2 = Float.min 10.0 (years +. 1.0) in
           Aging.Timing_library.factor_exact lib Cell.Kind.Nand2 ~sp ~years
           <= Aging.Timing_library.factor_exact lib Cell.Kind.Nand2 ~sp ~years:y2 +. 1e-12));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300 ~name:"factor monotone decreasing in sp" arb_sp_years
         (fun (sp, years) ->
           let sp2 = Float.min 1.0 (sp +. 0.1) in
           Aging.Timing_library.factor_exact lib Cell.Kind.Nand2 ~sp:sp2 ~years
           <= Aging.Timing_library.factor_exact lib Cell.Kind.Nand2 ~sp ~years +. 1e-12));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200 ~name:"delta_vth nonnegative and bounded" arb_sp_years
         (fun (sp, years) ->
           let d = Aging.delta_vth_of_sp cfg ~sp ~years in
           d >= 0.0 && d < 0.1));
  ]

let () =
  Alcotest.run "aging"
    [
      ( "cells",
        [
          Alcotest.test_case "truth tables" `Quick test_cell_eval;
          Alcotest.test_case "eval errors" `Quick test_cell_eval_errors;
          Alcotest.test_case "library sanity" `Quick test_library_sanity;
        ] );
      ( "spice",
        [
          Alcotest.test_case "monotone in vth" `Quick test_spice_monotone;
          Alcotest.test_case "transient vs closed form" `Quick test_spice_transient_matches_closed_form;
          Alcotest.test_case "degradation factor" `Quick test_degradation_factor;
        ] );
      ( "reaction-diffusion",
        [
          Alcotest.test_case "delta vth shape" `Quick test_delta_vth_shape;
          Alcotest.test_case "duty of sp" `Quick test_duty_of_sp;
          Alcotest.test_case "duty-cycled stress" `Quick test_duty_cycled;
          Alcotest.test_case "electromigration" `Quick test_em_factor;
          Alcotest.test_case "recovery" `Quick test_recovery;
        ] );
      ( "timing library",
        [
          Alcotest.test_case "grid interpolation" `Quick test_timing_library_grid;
          Alcotest.test_case "degradation shape" `Quick test_timing_library_shape;
          Alcotest.test_case "aged timing" `Quick test_aged_timing;
        ] );
      ("properties", props);
    ]
