(* Tests for the RV32 machine-code encoder, including golden encodings
   computed independently from the ISA manual's field layouts. *)

let enc instrs =
  match Rv32_encode.encode (Isa.assemble instrs) with
  | Ok words -> words
  | Error e -> Alcotest.failf "encode failed: %s" e

let check_words = Alcotest.(check (list int))

let test_golden_r_type () =
  (* add x1, x2, x3 = funct7 0 | rs2 3 | rs1 2 | funct3 0 | rd 1 | 0110011 *)
  check_words "add" [ 0x003100B3 ] (enc [ Isa.Alu (Alu.Add, 1, 2, 3) ]);
  (* sub x5, x6, x7 = 0x40000033 base *)
  check_words "sub" [ 0x407302B3 ] (enc [ Isa.Alu (Alu.Sub, 5, 6, 7) ]);
  (* sltu x10, x11, x12 *)
  check_words "sltu" [ 0x00C5B533 ] (enc [ Isa.Alu (Alu.Sltu, 10, 11, 12) ]);
  (* sra x1, x1, x2 *)
  check_words "sra" [ 0x4020D0B3 ] (enc [ Isa.Alu (Alu.Sra, 1, 1, 2) ])

let test_golden_i_type () =
  (* addi x1, x0, 42 *)
  check_words "li small" [ 0x02A00093 ] (enc [ Isa.Li (1, 42) ]);
  (* addi x3, x4, -1 = imm 0xFFF *)
  check_words "addi neg" [ 0xFFF20193 ] (enc [ Isa.Alui (Alu.Add, 3, 4, -1) ]);
  (* andi x2, x2, 255 *)
  check_words "andi" [ 0x0FF17113 ] (enc [ Isa.Alui (Alu.And_op, 2, 2, 255) ]);
  (* slli x1, x2, 4 *)
  check_words "slli" [ 0x00411093 ] (enc [ Isa.Alui (Alu.Sll, 1, 2, 4) ])

let test_li_expansion () =
  (* large immediates: lui + addi; the addi part must be sign-corrected *)
  (match enc [ Isa.Li (1, 0x12345) ] with
  | [ w1; w2 ] ->
    Alcotest.(check int) "lui opcode" 0x37 (w1 land 0x7F);
    Alcotest.(check int) "addi opcode" 0x13 (w2 land 0x7F)
  | other -> Alcotest.failf "expected 2 words, got %d" (List.length other));
  (* 0x800 in the low bits forces the +1 upper adjustment *)
  match enc [ Isa.Li (1, 0x1800) ] with
  | [ w1; w2 ] ->
    let imm20 = (w1 lsr 12) land 0xFFFFF in
    let imm12 = ((w2 asr 20) land 0xFFF lxor 0x800) - 0x800 in
    Alcotest.(check int) "reconstructed value" 0x1800 ((imm20 lsl 12) + imm12)
  | other -> Alcotest.failf "expected 2 words, got %d" (List.length other)

let test_branch_offsets () =
  (* beq x1, x2, +8 bytes (skipping one instruction) *)
  let words =
    enc [ Isa.Beq (1, 2, "target"); Isa.Nop; Isa.Label "target"; Isa.Nop ]
  in
  (match words with
  | [ b; _; _ ] ->
    Alcotest.(check int) "branch opcode" 0x63 (b land 0x7F);
    (* decode the B-immediate back *)
    let bit n v = (v lsr n) land 1 in
    let imm =
      (bit 31 b lsl 12)
      lor (bit 7 b lsl 11)
      lor (((b lsr 25) land 0x3F) lsl 5)
      lor (((b lsr 8) land 0xF) lsl 1)
    in
    Alcotest.(check int) "offset 8" 8 imm
  | _ -> Alcotest.fail "expected 3 words");
  (* backward branch: negative offset reconstructs via sign bit *)
  let words = enc [ Isa.Label "top"; Isa.Nop; Isa.Bne (3, 0, "top") ] in
  match words with
  | [ _; b ] -> Alcotest.(check int) "sign bit set" 1 ((b lsr 31) land 1)
  | _ -> Alcotest.fail "expected 2 words"

let test_jal_and_ecall () =
  let words = enc [ Isa.Jal (1, "end"); Isa.Label "end"; Isa.Ecall 0 ] in
  (match words with
  | [ j; a7; ec ] ->
    Alcotest.(check int) "jal opcode" 0x6F (j land 0x7F);
    Alcotest.(check int) "a7 setup" 0x13 (a7 land 0x7F);
    Alcotest.(check int) "a7 rd" 17 ((a7 lsr 7) land 0x1F);
    Alcotest.(check int) "ecall" 0x73 ec
  | _ -> Alcotest.fail "expected 3 words")

let test_float_ops () =
  check_words "fadd.s f1, f2, f3" [ 0x003100D3 ] (enc [ Isa.Fop (Fpu_format.Fadd, 1, 2, 3) ]);
  check_words "fmul.s f4, f5, f6" [ 0x10628253 ] (enc [ Isa.Fop (Fpu_format.Fmul, 4, 5, 6) ]);
  (* feq.s x1, f2, f3: funct7 0x50 funct3 2 *)
  check_words "feq.s" [ 0xA03120D3 ] (enc [ Isa.Fcmp (Fpu_format.Feq, 1, 2, 3) ]);
  (* fmv.w.x f0, x5: funct7 0x78 *)
  check_words "fmv.w.x" [ 0xF0028053 ] (enc [ Isa.Fmv_wx (0, 5) ])

let test_memory_scaling () =
  (* word address 3 -> byte offset 12 *)
  check_words "lw" [ 0x00C52083 ] (enc [ Isa.Lw (1, 10, 3) ]);
  (* sw x1, 12(x10): S-type splits the immediate *)
  (match enc [ Isa.Sw (1, 10, 3) ] with
  | [ w ] ->
    Alcotest.(check int) "sw opcode" 0x23 (w land 0x7F);
    let imm = (((w lsr 25) land 0x7F) lsl 5) lor ((w lsr 7) land 0x1F) in
    Alcotest.(check int) "byte offset" 12 imm
  | _ -> Alcotest.fail "one word");
  (* a large offset goes through the scratch register *)
  match enc [ Isa.Lw (1, 10, 1000) ] with
  | words -> Alcotest.(check bool) "expanded" true (List.length words > 1)

let test_csr () =
  (* csrrw x9, fflags(0x001), x0 *)
  check_words "csrrw" [ 0x001014F3 ] (enc [ Isa.Csr_fflags 9 ])

let test_disassembler_roundtrip () =
  let program =
    [
      Isa.Li (5, 100);
      Isa.Alu (Alu.Add, 6, 5, 5);
      Isa.Alui (Alu.Xor_op, 6, 6, 1);
      Isa.Fop (Fpu_format.Fsub, 1, 2, 3);
      Isa.Fcmp (Fpu_format.Flt, 4, 1, 2);
      Isa.Lw (7, 2, 1);
      Isa.Sw (7, 2, 2);
      Isa.Csr_fflags 9;
      Isa.Ecall 0;
    ]
  in
  List.iter
    (fun w ->
      let d = Rv32_encode.disassemble_word w in
      Alcotest.(check bool)
        (Printf.sprintf "recognized %08x -> %s" w d)
        false
        (String.length d > 0 && d.[0] = '?'))
    (enc program)

let test_to_hex () =
  let hex = Rv32_encode.to_hex [ 0x003100B3; 0x73 ] in
  Alcotest.(check string) "readmemh format" "003100b3\n00000073\n" hex

let test_whole_suite_encodes () =
  (* every generated test suite must be encodable *)
  let target = Lift.alu_target ~width:16 () in
  let r = Lift.lift_pair target ~start_dff:"a_q0" ~end_dff:"r_q0" ~violation:Fault.Setup_violation in
  let suite = Lift.suite_of_results target.Lift.kind [ r ] in
  match Rv32_encode.encode (Lift.suite_program suite) with
  | Ok words ->
    Alcotest.(check bool) "nonempty" true (List.length words > 10);
    List.iter
      (fun w -> Alcotest.(check bool) "32-bit" true (w >= 0 && w <= 0xFFFFFFFF))
      words
  | Error e -> Alcotest.failf "suite failed to encode: %s" e

let test_workload_encodes () =
  let compiled = Minic.compile (Workload.find "crc").Workload.program in
  match Rv32_encode.encode (Minic.assemble compiled) with
  | Ok words -> Alcotest.(check bool) "hundreds of words" true (List.length words > 100)
  | Error e -> Alcotest.failf "workload failed to encode: %s" e

let () =
  Alcotest.run "rv32"
    [
      ( "golden encodings",
        [
          Alcotest.test_case "r-type" `Quick test_golden_r_type;
          Alcotest.test_case "i-type" `Quick test_golden_i_type;
          Alcotest.test_case "li expansion" `Quick test_li_expansion;
          Alcotest.test_case "branch offsets" `Quick test_branch_offsets;
          Alcotest.test_case "jal and ecall" `Quick test_jal_and_ecall;
          Alcotest.test_case "float ops" `Quick test_float_ops;
          Alcotest.test_case "memory scaling" `Quick test_memory_scaling;
          Alcotest.test_case "csr" `Quick test_csr;
        ] );
      ( "integration",
        [
          Alcotest.test_case "disassembler" `Quick test_disassembler_roundtrip;
          Alcotest.test_case "hex output" `Quick test_to_hex;
          Alcotest.test_case "suites encode" `Quick test_whole_suite_encodes;
          Alcotest.test_case "workloads encode" `Quick test_workload_encodes;
        ] );
    ]
