(* Unit and property tests for the Bitvec fixed-width bitvector module. *)

let bv w v = Bitvec.create ~width:w v

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_create_masks () =
  check_int "wraps modulo 2^w" 5 (Bitvec.to_int (bv 4 21));
  check_int "negative wraps" 15 (Bitvec.to_int (bv 4 (-1)));
  check_int "zero" 0 (Bitvec.to_int (Bitvec.zero 8));
  check_int "ones" 255 (Bitvec.to_int (Bitvec.ones 8));
  check_int "one" 1 (Bitvec.to_int (Bitvec.one 3))

let test_bounds () =
  Alcotest.check_raises "width 0 rejected" (Invalid_argument "Bitvec: width 0 out of range [1, 62]")
    (fun () -> ignore (Bitvec.create ~width:0 0));
  Alcotest.check_raises "width 63 rejected" (Invalid_argument "Bitvec: width 63 out of range [1, 62]")
    (fun () -> ignore (Bitvec.create ~width:63 0))

let test_signed () =
  check_int "msb set is negative" (-1) (Bitvec.to_signed (bv 4 15));
  check_int "min value" (-8) (Bitvec.to_signed (bv 4 8));
  check_int "positive unchanged" 7 (Bitvec.to_signed (bv 4 7))

let test_arith () =
  check_int "add wraps" 0 (Bitvec.to_int (Bitvec.add (bv 4 8) (bv 4 8)));
  check_int "sub wraps" 15 (Bitvec.to_int (Bitvec.sub (bv 4 0) (bv 4 1)));
  check_int "neg" 13 (Bitvec.to_int (Bitvec.neg (bv 4 3)));
  check_int "mul" 6 (Bitvec.to_int (Bitvec.mul (bv 4 2) (bv 4 3)));
  check_int "mul wraps" 8 (Bitvec.to_int (Bitvec.mul (bv 4 12) (bv 4 10)));
  let sum, carry = Bitvec.add_carry (bv 4 9) (bv 4 8) false in
  check_int "add_carry sum" 1 (Bitvec.to_int sum);
  check_bool "add_carry carry" true carry

let test_mul_wide () =
  (* limb-split path: 40-bit operands *)
  let a = Bitvec.create ~width:40 0xFFFFFFFFF in
  let b = Bitvec.create ~width:40 3 in
  check_int "wide mul" ((0xFFFFFFFFF * 3) land ((1 lsl 40) - 1)) (Bitvec.to_int (Bitvec.mul a b))

let test_shifts () =
  check_int "sll" 8 (Bitvec.to_int (Bitvec.shift_left (bv 4 1) 3));
  check_int "sll overflow" 0 (Bitvec.to_int (Bitvec.shift_left (bv 4 1) 4));
  check_int "srl" 1 (Bitvec.to_int (Bitvec.shift_right_logical (bv 4 8) 3));
  check_int "sra sign fill" 15 (Bitvec.to_int (Bitvec.shift_right_arith (bv 4 8) 3));
  check_int "sra positive" 1 (Bitvec.to_int (Bitvec.shift_right_arith (bv 4 4) 2));
  check_int "sra full width" 15 (Bitvec.to_int (Bitvec.shift_right_arith (bv 4 8) 4))

let test_compare () =
  check_bool "ult" true (Bitvec.ult (bv 4 2) (bv 4 14));
  check_bool "slt sees sign" true (Bitvec.slt (bv 4 14) (bv 4 2));
  check_bool "slt equal" false (Bitvec.slt (bv 4 5) (bv 4 5))

let test_structure () =
  check_int "extract" 0b1101 (Bitvec.to_int (Bitvec.extract (bv 8 0b01011010) ~hi:4 ~lo:1));
  check_int "concat" 0b1011 (Bitvec.to_int (Bitvec.concat (bv 2 0b10) (bv 2 0b11)));
  check_int "zero_extend" 3 (Bitvec.to_int (Bitvec.zero_extend (bv 2 3) 8));
  check_int "sign_extend" 255 (Bitvec.to_int (Bitvec.sign_extend (bv 2 3) 8));
  check_int "set_bit" 0b101 (Bitvec.to_int (Bitvec.set_bit (bv 3 0b001) 2 true));
  check_int "popcount" 4 (Bitvec.popcount (bv 8 0b10110101 |> fun v -> Bitvec.set_bit v 7 false))

let test_strings () =
  Alcotest.(check string) "to_string" "4'b0110" (Bitvec.to_string (bv 4 6));
  Alcotest.(check string) "hex" "8'hab" (Bitvec.to_hex_string (bv 8 0xab))

let test_of_bits () =
  check_int "of_bits lsb first" 0b011 (Bitvec.to_int (Bitvec.of_bits [ true; true; false ]));
  check_bool "bit round trip" true (Bitvec.bit (Bitvec.of_bits [ false; true ]) 1)

(* Property tests *)

let arb_pair =
  QCheck.make
    ~print:(fun (w, a, b) -> Printf.sprintf "w=%d a=%d b=%d" w a b)
    QCheck.Gen.(
      int_range 1 30 >>= fun w ->
      int_bound ((1 lsl w) - 1) >>= fun a ->
      int_bound ((1 lsl w) - 1) >>= fun b -> return (w, a, b))

let prop name f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name arb_pair f)

let props =
  [
    prop "add commutes" (fun (w, a, b) ->
        Bitvec.equal (Bitvec.add (bv w a) (bv w b)) (Bitvec.add (bv w b) (bv w a)));
    prop "add/sub inverse" (fun (w, a, b) ->
        Bitvec.equal (Bitvec.sub (Bitvec.add (bv w a) (bv w b)) (bv w b)) (bv w a));
    prop "mul matches reference" (fun (w, a, b) ->
        Bitvec.to_int (Bitvec.mul (bv w a) (bv w b)) = a * b land ((1 lsl w) - 1));
    prop "de morgan" (fun (w, a, b) ->
        Bitvec.equal
          (Bitvec.lognot (Bitvec.logand (bv w a) (bv w b)))
          (Bitvec.logor (Bitvec.lognot (bv w a)) (Bitvec.lognot (bv w b))));
    prop "xor self is zero" (fun (w, a, _) -> Bitvec.is_zero (Bitvec.logxor (bv w a) (bv w a)));
    prop "signed round trip" (fun (w, a, _) ->
        Bitvec.equal (Bitvec.create ~width:w (Bitvec.to_signed (bv w a))) (bv w a));
    prop "slt matches signed compare" (fun (w, a, b) ->
        Bitvec.slt (bv w a) (bv w b) = (Bitvec.to_signed (bv w a) < Bitvec.to_signed (bv w b)));
    prop "sra is floor division by two" (fun (w, a, _) ->
        let v = bv w a in
        Bitvec.to_signed (Bitvec.shift_right_arith v 1) = Bitvec.to_signed v asr 1);
    prop "extract concat round trip" (fun (w, a, _) ->
        QCheck.assume (w >= 2);
        let v = bv w a in
        let hi = Bitvec.extract v ~hi:(w - 1) ~lo:(w / 2) in
        let lo = Bitvec.extract v ~hi:((w / 2) - 1) ~lo:0 in
        Bitvec.equal (Bitvec.concat hi lo) v);
    prop "bits round trip" (fun (w, a, _) ->
        Bitvec.equal (Bitvec.of_bits (Bitvec.bits (bv w a))) (bv w a));
  ]

let () =
  Alcotest.run "bitvec"
    [
      ( "unit",
        [
          Alcotest.test_case "create masks" `Quick test_create_masks;
          Alcotest.test_case "width bounds" `Quick test_bounds;
          Alcotest.test_case "signed" `Quick test_signed;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "wide mul" `Quick test_mul_wide;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "of_bits" `Quick test_of_bits;
        ] );
      ("properties", props);
    ]
