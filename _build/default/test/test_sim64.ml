(* Differential property tests for the word-parallel simulator: on random
   netlists and the example circuits, Sim64 lane k must agree with a scalar
   Sim fed lane k's stimulus — every output port, every cycle, including
   hold_clock — and the aggregated profile counters must equal the sums of
   the per-lane scalar counters exactly. *)

module B = Netlist.Builder

let bv w v = Bitvec.create ~width:w v
let rand_bits rng w = Random.State.int rng (1 lsl w)

(* --- random netlist generation --- *)

let comb_kinds =
  [|
    Cell.Kind.Tie0;
    Cell.Kind.Tie1;
    Cell.Kind.Buf;
    Cell.Kind.Not;
    Cell.Kind.And2;
    Cell.Kind.Or2;
    Cell.Kind.Xor2;
    Cell.Kind.Nand2;
    Cell.Kind.Nor2;
    Cell.Kind.Xnor2;
    Cell.Kind.Mux2;
  |]

let build_random_netlist rng =
  let b = B.create "rand" in
  let pool = ref [] in
  let n_ports = 1 + Random.State.int rng 3 in
  for i = 0 to n_ports - 1 do
    let w = 1 + Random.State.int rng 4 in
    pool := Array.to_list (B.add_input b (Printf.sprintf "in%d" i) w) @ !pool
  done;
  let pick () =
    let a = Array.of_list !pool in
    a.(Random.State.int rng (Array.length a))
  in
  let n_cells = 5 + Random.State.int rng 36 in
  for _ = 1 to n_cells do
    (* one in four cells is a DFF, so feedback-free sequential depth shows up *)
    let out =
      if Random.State.int rng 4 = 0 then
        B.add_cell ~clock_domain:0 ~reset_value:(Random.State.bool rng) b Cell.Kind.Dff
          [| pick () |]
      else begin
        let k = comb_kinds.(Random.State.int rng (Array.length comb_kinds)) in
        B.add_cell b k (Array.init (Cell.Kind.arity k) (fun _ -> pick ()))
      end
    in
    pool := out :: !pool
  done;
  let n_out = 1 + Random.State.int rng 2 in
  for i = 0 to n_out - 1 do
    let w = 1 + Random.State.int rng 3 in
    B.add_output b (Printf.sprintf "out%d" i) (Array.init w (fun _ -> pick ()))
  done;
  B.finish b

(* --- the differential harness --- *)

(* Scalar counters are not exposed raw; recover them from sp/toggle_rate
   (tiny integers, so the float round-trip is exact after rounding). *)
let scalar_ones r n =
  int_of_float (Float.round (Sim.sp r n *. float_of_int (Sim.samples r)))

let scalar_toggles r n =
  if Sim.samples r < 2 then 0
  else int_of_float (Float.round (Sim.toggle_rate r n *. float_of_int (Sim.samples r - 1)))

(* Run [cycles] cycles of random stimulus on all lanes at once and on
   [Sim64.lanes] scalar references; true iff everything agrees. *)
let differential_run rng nl cycles =
  let nlanes = Sim64.lanes in
  let s64 = Sim64.create ~profile:true nl in
  let refs = Array.init nlanes (fun _ -> Sim.create ~profile:true nl) in
  let in_ports = Netlist.inputs nl in
  let out_ports = Netlist.outputs nl in
  let ok = ref true in
  for _ = 1 to cycles do
    List.iter
      (fun (p : Netlist.port) ->
        let w = Array.length p.Netlist.port_nets in
        for lane = 0 to nlanes - 1 do
          let v = bv w (rand_bits rng w) in
          Sim.set_input refs.(lane) p.Netlist.port_name v;
          Sim64.set_input s64 ~lane p.Netlist.port_name v
        done)
      in_ports;
    if Random.State.int rng 4 = 0 then begin
      Sim64.hold_clock s64;
      Array.iter (fun r -> Sim.hold_clock r) refs
    end
    else begin
      Sim64.step s64;
      Array.iter (fun r -> Sim.step r) refs
    end;
    List.iter
      (fun (p : Netlist.port) ->
        for lane = 0 to nlanes - 1 do
          if
            not
              (Bitvec.equal
                 (Sim.output refs.(lane) p.Netlist.port_name)
                 (Sim64.output s64 ~lane p.Netlist.port_name))
          then ok := false
        done)
      out_ports
  done;
  (* aggregated profile counters match the per-lane sums exactly *)
  if Sim64.samples s64 <> nlanes * cycles then ok := false;
  if Sim64.cycles_sampled s64 <> cycles then ok := false;
  for n = 0 to Netlist.num_nets nl - 1 do
    let ones = Array.fold_left (fun acc r -> acc + scalar_ones r n) 0 refs in
    let toggles = Array.fold_left (fun acc r -> acc + scalar_toggles r n) 0 refs in
    if Sim64.ones_count s64 n <> ones then ok := false;
    if Sim64.toggles_count s64 n <> toggles then ok := false
  done;
  !ok

let prop_differential_random_netlists =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"Sim64 lane k = scalar Sim on random netlists"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000_000))
       (fun seed ->
         let rng = Random.State.make [| seed; 0xd1ff |] in
         let nl = build_random_netlist rng in
         differential_run rng nl (6 + Random.State.int rng 6)))

let test_differential_examples () =
  let rng = Random.State.make [| 0x51b64 |] in
  List.iter
    (fun nl ->
      Alcotest.(check bool)
        (Printf.sprintf "differential on %s" (Netlist.name nl))
        true (differential_run rng nl 16))
    [
      Example_circuits.pipelined_adder ();
      Example_circuits.pipelined_adder ~split_domains:true ();
      Example_circuits.dff_chain 5;
      Example_circuits.lfsr4 ();
      Example_circuits.comb_xor_tree 8;
    ]

(* --- the Lane view through the engine-generic consumers --- *)

let adder_stimulus c = [ ("a", bv 2 (c land 3)); ("b", bv 2 ((c * 3) land 3)) ]

let test_lane_view_vcd () =
  let nl = Example_circuits.pipelined_adder () in
  let scalar = Vcd.of_sim_run (Sim.create nl) ~cycles:8 ~stimulus:adder_stimulus in
  let s64 = Sim64.create nl in
  let lane7 =
    Vcd.of_engine_run (module Sim64.Lane) (Sim64.lane_view s64 7) ~cycles:8
      ~stimulus:adder_stimulus
  in
  Alcotest.(check string) "lane VCD = scalar VCD" scalar lane7

let test_lane_view_power () =
  let nl = Example_circuits.lfsr4 () in
  let scalar = Sim.create ~profile:true nl in
  let s64 = Sim64.create ~profile:true nl in
  for c = 0 to 19 do
    let e = bv 1 (c land 1) in
    Sim.set_input scalar "enable" e;
    Sim64.set_input_all s64 "enable" e;
    Sim.step scalar;
    Sim64.step s64
  done;
  let r = Power.analyze Cell.Library.c28 scalar ~clock_mhz:800.0 in
  let r64 =
    Power.analyze_engine (module Sim64.Lane) Cell.Library.c28 (Sim64.lane_view s64 0)
      ~clock_mhz:800.0
  in
  (* identical stimulus in every lane: the aggregate profile equals the
     scalar one, so the reports coincide *)
  Alcotest.(check int) "cell count" r.Power.cell_count r64.Power.cell_count;
  let close what a b = Alcotest.(check bool) what true (Float.abs (a -. b) < 1e-9) in
  close "leakage" r.Power.total_leakage_nw r64.Power.total_leakage_nw;
  close "dynamic" r.Power.total_dynamic_nw r64.Power.total_dynamic_nw

(* --- unit tests: lanes, masks, popcount, validation --- *)

let test_constants () =
  Alcotest.(check int) "lanes = int size" Sys.int_size Sim64.lanes;
  Alcotest.(check bool) "at least 62 lanes" true (Sim64.lanes >= 62);
  Alcotest.(check int) "popcount 0" 0 (Sim64.popcount 0);
  Alcotest.(check int) "popcount all" Sim64.lanes (Sim64.popcount Sim64.all_lanes);
  Alcotest.(check int) "popcount 0b1011" 3 (Sim64.popcount 0b1011);
  Alcotest.(check int) "mask 0" 0 (Sim64.mask_of_count 0);
  Alcotest.(check int) "mask 10" 10 (Sim64.popcount (Sim64.mask_of_count 10));
  Alcotest.(check int) "mask lanes" Sim64.all_lanes (Sim64.mask_of_count Sim64.lanes)

let test_validation () =
  let s = Sim64.create (Example_circuits.pipelined_adder ()) in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Sim64.set_input: port a has width 2, value has width 3") (fun () ->
      Sim64.set_input s ~lane:0 "a" (bv 3 0));
  (match Sim64.set_input s ~lane:Sim64.lanes "a" (bv 2 0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range lane accepted");
  match Sim64.sp s 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sp without profiling accepted"

let test_active_mask_restricts_counters () =
  let nl = Example_circuits.dff_chain 1 in
  let s = Sim64.create ~profile:true nl in
  (* drive d = 1 in lanes 0-2 only; sample only those lanes *)
  Sim64.set_input_words s "d" [| 0b111 |];
  Sim64.set_active_mask s 0b111;
  Sim64.step s;
  Sim64.step s;
  Alcotest.(check int) "samples = active lanes x cycles" 6 (Sim64.samples s);
  let d_net = (Netlist.find_input nl "d").Netlist.port_nets.(0) in
  Alcotest.(check int) "ones only in active lanes" 6 (Sim64.ones_count s d_net);
  Alcotest.(check (float 1e-9)) "sp = 1 over active lanes" 1.0 (Sim64.sp s d_net)

let () =
  Alcotest.run "sim64"
    [
      ( "differential",
        [
          prop_differential_random_netlists;
          Alcotest.test_case "example circuits" `Quick test_differential_examples;
        ] );
      ( "engine-generic",
        [
          Alcotest.test_case "lane view vcd" `Quick test_lane_view_vcd;
          Alcotest.test_case "lane view power" `Quick test_lane_view_power;
        ] );
      ( "unit",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "active mask" `Quick test_active_mask_restricts_counters;
        ] );
    ]
