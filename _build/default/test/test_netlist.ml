(* Tests for the netlist IR, builder validation, analysis helpers, the
   clock tree, and the example circuits. *)

module B = Netlist.Builder

let adder = Example_circuits.pipelined_adder ()

let test_adder_shape () =
  Alcotest.(check int) "cells" 10 (Netlist.num_cells adder);
  Alcotest.(check int) "dffs" 6 (List.length (Netlist.dffs adder));
  let stats = Netlist.stats adder in
  Alcotest.(check int) "xors" 3 (List.assoc Cell.Kind.Xor2 stats);
  Alcotest.(check int) "ands" 1 (List.assoc Cell.Kind.And2 stats);
  Alcotest.(check int) "depth" 2 (Netlist.logic_depth adder)

let test_cell_lookup () =
  let c7 = Netlist.find_cell adder "$7" in
  Alcotest.(check bool) "xor kind" true (Cell.Kind.equal c7.kind Cell.Kind.Xor2);
  Alcotest.check_raises "missing cell" Not_found (fun () ->
      ignore (Netlist.find_cell adder "nope"))

let test_net_names () =
  let c7 = Netlist.find_cell adder "$7" in
  Alcotest.(check string) "cell net name" "$7.Y" (Netlist.net_name adder c7.output);
  let a = Netlist.find_input adder "a" in
  Alcotest.(check string) "input net name" "a[0]" (Netlist.net_name adder a.port_nets.(0))

let test_topo_order () =
  (* every combinational cell appears after the combinational drivers of
     its inputs *)
  let order = Netlist.topo_order adder in
  let pos = Hashtbl.create 16 in
  Array.iteri (fun i id -> Hashtbl.replace pos id i) order;
  Array.iter
    (fun id ->
      let c = Netlist.cell adder id in
      Array.iter
        (fun n ->
          match Netlist.driver adder n with
          | Netlist.Driven_by_cell did when not (Cell.Kind.is_sequential (Netlist.cell adder did).kind)
            ->
            Alcotest.(check bool) "driver before reader" true
              (Hashtbl.find pos did < Hashtbl.find pos id)
          | _ -> ())
        c.inputs)
    order

let test_cones () =
  let c4 = Netlist.find_cell adder "$4" in
  let cone = Netlist.fanout_cone adder c4.output in
  let names = List.map (fun id -> (Netlist.cell adder id).name) cone in
  Alcotest.(check (list string)) "fanout of $4" [ "$7"; "$8"; "$10" ] names;
  let c10 = Netlist.find_cell adder "$10" in
  let fanin = Netlist.fanin_cone adder c10.inputs.(0) in
  let names = List.sort compare (List.map (fun id -> (Netlist.cell adder id).name) fanin) in
  Alcotest.(check (list string)) "fanin of $10.D" [ "$1"; "$2"; "$3"; "$4"; "$6"; "$7"; "$8" ]
    names

let test_output_readers () =
  let c9 = Netlist.find_cell adder "$9" in
  Alcotest.(check (list (pair string int))) "o[0] reads $9.Q" [ ("o", 0) ]
    (Netlist.output_readers adder c9.output)

let test_builder_validation () =
  let invalid msg f = Alcotest.check_raises msg (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  invalid "arity mismatch" (fun () ->
      let b = B.create "bad" in
      let x = B.add_input b "x" 1 in
      ignore (B.add_cell b Cell.Kind.And2 [| x.(0) |]));
  invalid "duplicate cell name" (fun () ->
      let b = B.create "bad" in
      let x = B.add_input b "x" 1 in
      ignore (B.add_cell ~name:"g" b Cell.Kind.Not [| x.(0) |]);
      ignore (B.add_cell ~name:"g" b Cell.Kind.Not [| x.(0) |]));
  invalid "combinational cycle" (fun () ->
      let b = B.create "bad" in
      let x = B.add_input b "x" 1 in
      let g1 = B.add_cell b Cell.Kind.And2 [| x.(0); x.(0) |] in
      let g2 = B.add_cell b Cell.Kind.Not [| g1 |] in
      (* close a loop: g1's second input becomes g2's output *)
      B.rewire_input b ~cell_id:0 ~pin:1 g2;
      ignore (B.finish b));
  invalid "undriven output port" (fun () ->
      let b = B.create "bad" in
      let x = B.add_input b "x" 1 in
      ignore x;
      let dangling = B.fresh_net b in
      B.add_output b "y" [| dangling |];
      ignore (B.finish b))

let test_of_netlist_roundtrip () =
  let b = B.of_netlist adder in
  let copy = B.finish b in
  Alcotest.(check int) "same cells" (Netlist.num_cells adder) (Netlist.num_cells copy);
  Alcotest.(check int) "same nets" (Netlist.num_nets adder) (Netlist.num_nets copy);
  let c = Netlist.find_cell copy "$8" in
  let orig = Netlist.find_cell adder "$8" in
  Alcotest.(check bool) "same wiring" true (c.inputs = orig.inputs && c.output = orig.output)

let test_verilog_export () =
  let v = Netlist.to_verilog adder in
  Alcotest.(check bool) "has module header" true
    (String.length v > 0 && String.sub v 0 6 = "module");
  let contains needle =
    let nl = String.length needle and hl = String.length v in
    let rec go i = i + nl <= hl && (String.sub v i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions DFF" true (contains "DFF");
  Alcotest.(check bool) "mentions XOR2" true (contains "XOR2");
  Alcotest.(check bool) "endmodule" true (contains "endmodule")

let test_dot_export () =
  let dot = Netlist.to_dot adder in
  let contains needle =
    let nl = String.length needle and hl = String.length dot in
    let rec go i = i + nl <= hl && (String.sub dot i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph paper_adder");
  Alcotest.(check bool) "dff node" true (contains "\"$1\" [shape=box3d");
  Alcotest.(check bool) "edge" true (contains "\"$7\" -> \"$8\"");
  Alcotest.(check bool) "input edge" true (contains "\"a[0]\" -> \"$1\"");
  Alcotest.(check bool) "closes" true (contains "}")

let test_clock_tree () =
  let tree = Clock_tree.two_domain_gated ~leaf_buffers:4 ~sp_gated:0.95 () in
  Alcotest.(check (list int)) "domains" [ 0; 1 ] (Clock_tree.domains tree);
  let flat_delay ~sp:_ = 10.0 in
  Alcotest.(check (float 1e-9)) "arrival d0" 60.0 (Clock_tree.arrival_ps tree ~buffer_delay:flat_delay 0);
  Alcotest.(check (float 1e-9)) "no skew with flat delays" 0.0
    (Clock_tree.skew_ps tree ~buffer_delay:flat_delay ~src:0 ~dst:1);
  (* aged delays depending on sp create skew *)
  let aged ~sp = 10.0 +. (5.0 *. sp) in
  Alcotest.(check bool) "gated domain arrives later" true
    (Clock_tree.skew_ps tree ~buffer_delay:aged ~src:0 ~dst:1 > 0.0);
  Alcotest.check_raises "unknown domain"
    (Invalid_argument "Clock_tree gated: no domain 7") (fun () ->
      ignore (Clock_tree.arrival_ps tree ~buffer_delay:flat_delay 7))

let test_clock_tree_validation () =
  Alcotest.check_raises "duplicate domains" (Invalid_argument "Clock_tree: duplicate domain id")
    (fun () ->
      ignore
        (Clock_tree.create "dup"
           (Clock_tree.Branch
              {
                branch_name = "r";
                buffers = 1;
                activity_sp = 0.5;
                children =
                  [
                    Clock_tree.Leaf { domain = 0; leaf_name = "a"; buffers = 1; activity_sp = 0.5 };
                    Clock_tree.Leaf { domain = 0; leaf_name = "b"; buffers = 1; activity_sp = 0.5 };
                  ];
              })))

let test_dff_chain () =
  let c = Example_circuits.dff_chain 5 in
  Alcotest.(check int) "five dffs" 5 (List.length (Netlist.dffs c));
  Alcotest.(check int) "no comb" 0 (Array.length (Netlist.topo_order c))

let test_xor_tree () =
  let c = Example_circuits.comb_xor_tree 8 in
  Alcotest.(check int) "seven xors" 7 (Netlist.num_cells c)

(* Property: random DAG circuits built through the builder always pass
   validation and give a consistent topo order. *)
let arb_circuit_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000)

let build_random_circuit seed =
  let rng = Random.State.make [| seed |] in
  let b = B.create "random" in
  let x = B.add_input b "x" 4 in
  let nets = ref (Array.to_list x) in
  let n_gates = 5 + Random.State.int rng 30 in
  for _ = 1 to n_gates do
    let pick () = List.nth !nets (Random.State.int rng (List.length !nets)) in
    let kind =
      match Random.State.int rng 5 with
      | 0 -> Cell.Kind.And2
      | 1 -> Cell.Kind.Or2
      | 2 -> Cell.Kind.Xor2
      | 3 -> Cell.Kind.Not
      | _ -> Cell.Kind.Dff
    in
    let inputs =
      Array.init (Cell.Kind.arity kind) (fun _ -> pick ())
    in
    let out =
      if Cell.Kind.is_sequential kind then B.add_cell ~clock_domain:0 b kind inputs
      else B.add_cell b kind inputs
    in
    nets := out :: !nets
  done;
  B.add_output b "y" [| List.hd !nets |];
  B.finish b

let prop_random_circuits =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"random DAGs validate and topo-sort" arb_circuit_seed
       (fun seed ->
         let nl = build_random_circuit seed in
         let order = Netlist.topo_order nl in
         let comb =
           Array.to_list (Netlist.cells nl)
           |> List.filter (fun (c : Netlist.cell) -> not (Cell.Kind.is_sequential c.kind))
         in
         Array.length order = List.length comb))

let () =
  Alcotest.run "netlist"
    [
      ( "adder example",
        [
          Alcotest.test_case "shape" `Quick test_adder_shape;
          Alcotest.test_case "cell lookup" `Quick test_cell_lookup;
          Alcotest.test_case "net names" `Quick test_net_names;
          Alcotest.test_case "topo order" `Quick test_topo_order;
          Alcotest.test_case "cones" `Quick test_cones;
          Alcotest.test_case "output readers" `Quick test_output_readers;
        ] );
      ( "builder",
        [
          Alcotest.test_case "validation" `Quick test_builder_validation;
          Alcotest.test_case "of_netlist round trip" `Quick test_of_netlist_roundtrip;
          Alcotest.test_case "verilog export" `Quick test_verilog_export;
          Alcotest.test_case "dot export" `Quick test_dot_export;
        ] );
      ( "clock tree",
        [
          Alcotest.test_case "arrivals and skew" `Quick test_clock_tree;
          Alcotest.test_case "validation" `Quick test_clock_tree_validation;
        ] );
      ( "other examples",
        [
          Alcotest.test_case "dff chain" `Quick test_dff_chain;
          Alcotest.test_case "xor tree" `Quick test_xor_tree;
        ] );
      ("properties", [ prop_random_circuits ]);
    ]
