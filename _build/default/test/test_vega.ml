(* End-to-end tests for the Vega workflow core and smoke tests for the
   experiment drivers (small configurations). *)

let small_target = Lift.alu_target ~width:8 ()

let small_phase1 =
  {
    Vega.default_phase1 with
    Vega.clock_margin = 1.0;
    clock_tree = Clock_tree.two_domain_gated ~leaf_buffers:4 ~sp_gated:0.05 ();
  }

let analysis =
  Vega.aging_analysis ~config:small_phase1 small_target ~workload:Vega.run_minver_workload

let test_analysis_sanity () =
  Alcotest.(check bool) "clock period positive" true (analysis.Vega.clock_period_ps > 0.0);
  (* the fresh design meets timing at the derived clock *)
  Alcotest.(check int) "fresh setup clean" 0
    (List.length analysis.Vega.fresh_report.Sta.setup_violations);
  Alcotest.(check int) "fresh hold clean" 0
    (List.length analysis.Vega.fresh_report.Sta.hold_violations);
  (* aging opens violations *)
  Alcotest.(check bool) "aged violations appear" true
    (analysis.Vega.aged_report.Sta.setup_violations <> []);
  Alcotest.(check bool) "violating pairs found" true (analysis.Vega.violating_pairs <> []);
  Alcotest.(check bool) "sp profiled" true (analysis.Vega.sp_samples > 0)

let test_cell_degradation_range () =
  List.iter
    (fun (_, f) ->
      Alcotest.(check bool) "factor in the Fig 8 band" true (f >= 1.015 && f <= 1.07))
    analysis.Vega.cell_degradation;
  Alcotest.(check bool) "covers all comb cells" true
    (List.length analysis.Vega.cell_degradation > 300)

let test_full_workflow () =
  let report =
    Vega.run_workflow ~phase1:small_phase1 small_target ~workload:Vega.run_minver_workload
  in
  Alcotest.(check bool) "pairs lifted" true (report.Vega.pair_results <> []);
  Alcotest.(check bool) "suite built" true (report.Vega.suite.Lift.suite_cases <> []);
  Alcotest.(check bool) "suite cycles measured" true (report.Vega.suite_cycles > 0);
  Alcotest.(check bool) "suite runs within thousands of cycles" true
    (report.Vega.suite_cycles < 5000);
  let counts = Vega.classification_counts report.Vega.pair_results in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  Alcotest.(check int) "classification partitions pairs" (List.length report.Vega.pair_results)
    total

let test_machine_for () =
  let m = Vega.machine_for small_target in
  Alcotest.(check int) "width matches" 8 (Machine.config m).Machine.width;
  let mf = Vega.machine_for (Lift.fpu_target ()) in
  Alcotest.(check int) "fpu machine width" 16 (Machine.config mf).Machine.width

(* --- experiment drivers (cheap ones; the full context is exercised by the
   benchmark harness) --- *)

let test_fig4_shape () =
  let f = Experiments.fig4 () in
  List.iter
    (fun (sp, series) ->
      let _, final = List.nth series (List.length series - 1) in
      Alcotest.(check bool)
        (Printf.sprintf "SP %.2f degradation in band" sp)
        true
        (final > 1.5 && final < 7.0);
      (* monotone in years *)
      let rec mono = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      Alcotest.(check bool) "monotone" true (mono series))
    f.Experiments.sp_series;
  (* lower SP ages faster: compare final points *)
  let final sp =
    let _, series = List.find (fun (s, _) -> Float.abs (s -. sp) < 1e-9) f.Experiments.sp_series in
    snd (List.nth series (List.length series - 1))
  in
  Alcotest.(check bool) "SP 0.05 worse than SP 0.95" true (final 0.05 > final 0.95)

let test_table1_shape () =
  let rows = Experiments.table1 () in
  Alcotest.(check int) "ten signals" 10 (List.length rows);
  List.iter (fun (_, sp) -> Alcotest.(check bool) "sp in [0,1]" true (sp >= 0.0 && sp <= 1.0)) rows;
  (* the biased stimulus makes $1 high-SP and $4 low-SP *)
  let sp name = snd (List.find (fun (n, _) -> String.length n >= 2 && String.sub n 3 (String.length name) = name) rows) in
  ignore sp

let test_table2_trace () =
  let t = Experiments.table2 () in
  Alcotest.(check bool) "short trace" true (t.Formal.Trace.cycles <= 4);
  Alcotest.(check bool) "observes shadow" true
    (List.exists (fun (n, _) -> String.length n > 2 && String.sub n (String.length n - 2) 2 = "_s")
       t.Formal.Trace.observed);
  let rendered = Experiments.render_table2 t in
  Alcotest.(check bool) "renders" true (String.length rendered > 40)

let () =
  Alcotest.run "vega"
    [
      ( "workflow",
        [
          Alcotest.test_case "analysis sanity" `Quick test_analysis_sanity;
          Alcotest.test_case "cell degradation" `Quick test_cell_degradation_range;
          Alcotest.test_case "full workflow" `Quick test_full_workflow;
          Alcotest.test_case "machine_for" `Quick test_machine_for;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig4" `Quick test_fig4_shape;
          Alcotest.test_case "table1" `Quick test_table1_shape;
          Alcotest.test_case "table2" `Quick test_table2_trace;
        ] );
    ]
