(* Tests for the JSON codec and the suite interchange format. *)

let parse_ok s =
  match Json.of_string s with Ok v -> v | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_values () =
  Alcotest.(check bool) "null" true (parse_ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (parse_ok "true" = Json.Bool true);
  Alcotest.(check bool) "int" true (parse_ok "-42" = Json.Int (-42));
  Alcotest.(check bool) "float" true (parse_ok "2.5" = Json.Float 2.5);
  Alcotest.(check bool) "string" true (parse_ok {|"hi"|} = Json.String "hi");
  Alcotest.(check bool) "escapes" true
    (parse_ok {|"a\n\"b\"\t\\"|} = Json.String "a\n\"b\"\t\\");
  Alcotest.(check bool) "array" true
    (parse_ok "[1, 2, 3]" = Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
  Alcotest.(check bool) "empty array" true (parse_ok "[]" = Json.List []);
  Alcotest.(check bool) "object" true
    (parse_ok {|{"a": 1, "b": [true]}|}
    = Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true ]) ]);
  Alcotest.(check bool) "nested ws" true
    (parse_ok " { \"x\" :\n[ null , {} ] } " = Json.Obj [ ("x", Json.List [ Json.Null; Json.Obj [] ]) ])

let test_json_errors () =
  let fails s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse failure for %s" s
  in
  fails "";
  fails "{";
  fails "[1,]";
  fails "tru";
  fails "\"unterminated";
  fails "1 2";
  fails "{\"a\" 1}"

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.String "suite \"x\"\n");
        ("n", Json.Int 123456);
        ("pi", Json.Float 3.25);
        ("flags", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("nested", Json.Obj [ ("deep", Json.List [ Json.Obj [ ("k", Json.Int 0) ] ]) ]);
      ]
  in
  List.iter
    (fun pretty ->
      match Json.of_string (Json.to_string ~pretty v) with
      | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
      | Error e -> Alcotest.failf "roundtrip failed: %s" e)
    [ true; false ]

(* qcheck: random JSON values round-trip *)
let gen_json =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof
                [
                  return Json.Null;
                  map (fun b -> Json.Bool b) bool;
                  map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
                  map (fun s -> Json.String s) (string_size (int_bound 12) ~gen:printable);
                ]
            else
              oneof
                [
                  map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2)));
                  map
                    (fun kvs ->
                      (* object keys must be unique for equality to hold *)
                      let kvs =
                        List.mapi (fun i (k, v) -> (Printf.sprintf "%s_%d" k i, v)) kvs
                      in
                      Json.Obj kvs)
                    (list_size (int_bound 4)
                       (pair (string_size (int_bound 6) ~gen:printable) (self (n / 2))));
                ])
          (min n 6)))

let prop_json_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"random JSON round-trips"
       (QCheck.make ~print:(fun v -> Json.to_string v) gen_json)
       (fun v ->
         match Json.of_string (Json.to_string v) with Ok v' -> v = v' | Error _ -> false))

(* --- suite serialization --- *)

let alu_suite =
  let target = Lift.alu_target ~width:8 () in
  let r1 = Lift.lift_pair target ~start_dff:"a_q0" ~end_dff:"r_q0" ~violation:Fault.Setup_violation in
  Lift.suite_of_results target.Lift.kind [ r1 ]

let fpu_suite = Testgen.random_fpu_suite ~seed:3 ~fmt:Fpu_format.binary16 ~cases:5 ()

let test_suite_roundtrip () =
  List.iter
    (fun suite ->
      match Serial.suite_of_string (Serial.suite_to_string suite) with
      | Ok suite' -> Alcotest.(check bool) "suite round-trips exactly" true (suite = suite')
      | Error e -> Alcotest.failf "suite decode failed: %s" e)
    [ alu_suite; fpu_suite ]

let test_suite_versioning () =
  let j = Serial.suite_to_json alu_suite in
  let bad =
    match j with
    | Json.Obj fields ->
      Json.Obj (List.map (fun (k, v) -> if k = "version" then (k, Json.Int 999) else (k, v)) fields)
    | _ -> Alcotest.fail "expected object"
  in
  (match Serial.suite_of_json bad with
  | Error e -> Alcotest.(check bool) "version error mentions version" true
      (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected version rejection");
  match Serial.suite_of_string "{\"format\": \"other\", \"version\": 1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected format rejection"

let test_deserialized_suite_runs () =
  (* the operator-side flow: decode a shipped suite and run it *)
  match Serial.suite_of_string (Serial.suite_to_string alu_suite) with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok suite ->
    let target = Lift.alu_target ~width:8 () in
    let m =
      Machine.create
        ~config:{ Machine.default_config with Machine.width = 8; fmt = Fpu_format.tiny }
        ~alu:(Machine.Alu_netlist target.Lift.netlist) ~fpu:Machine.Fpu_functional ()
    in
    Alcotest.(check bool) "healthy pass" true
      (Integrate.Runner.run_tests m suite Integrate.Runner.Sequential = Ok ());
    let faulty =
      Fault.failing_netlist target.Lift.netlist
        {
          Fault.start_dff = "a_q0";
          end_dff = "r_q0";
          kind = Fault.Setup_violation;
          constant = Fault.C0;
          activation = Fault.Any_transition;
        }
    in
    let mf =
      Machine.create
        ~config:{ Machine.default_config with Machine.width = 8; fmt = Fpu_format.tiny }
        ~alu:(Machine.Alu_netlist faulty) ~fpu:Machine.Fpu_functional ()
    in
    Alcotest.(check bool) "fault detected from shipped suite" true
      (match Integrate.Runner.run_tests mf suite Integrate.Runner.Sequential with
      | Error _ -> true
      | Ok () -> false)

let () =
  Alcotest.run "serial"
    [
      ( "json",
        [
          Alcotest.test_case "values" `Quick test_json_values;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "suite",
        [
          Alcotest.test_case "roundtrip" `Quick test_suite_roundtrip;
          Alcotest.test_case "versioning" `Quick test_suite_versioning;
          Alcotest.test_case "operator flow" `Quick test_deserialized_suite_runs;
        ] );
      ("properties", [ prop_json_roundtrip ]);
    ]
