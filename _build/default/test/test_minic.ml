(* Tests for the Mini-C compiler: semantics on the ISS, the runtime
   library (software multiply/divide, Newton-Raphson float divide), basic
   blocks, and error diagnostics. *)

open Minic

let machine () = Machine.create ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional ()

(* compile, run, and return the machine *)
let run_program ?(max_instructions = 2_000_000) program =
  let compiled = compile program in
  let m = machine () in
  Machine.reset m;
  let prog = assemble compiled in
  match Machine.run ~max_instructions m prog with
  | Machine.Exited 0 -> m
  | o -> Alcotest.failf "program did not exit cleanly: %a" Machine.pp_outcome o

let prog ?(globals = []) body =
  { globals; funcs = [ { fname = "main"; params = []; ret = None; body } ] }

(* programs store results in an "out" global, allocated first (address 32) *)
let run_int_main body =
  let program = prog ~globals:[ Gint ("out", 0) ] body in
  let m = run_program program in
  Bitvec.to_int (Machine.mem m 32)

let run_float_main body =
  let program = prog ~globals:[ Gfloat ("out", 0.0) ] body in
  let m = run_program program in
  Fpu_format.to_float Fpu_format.binary16 (Bitvec.create ~width:16 (Bitvec.to_int (Machine.mem m 32)))

let test_arith () =
  Alcotest.(check int) "basic arith" 17 (run_int_main [ Assign ("out", i 3 * i 4 + i 10 / i 2) ]);
  Alcotest.(check int) "mod" 2 (run_int_main [ Assign ("out", i 17 % i 5) ]);
  Alcotest.(check int) "precedence-free eDSL" 21
    (run_int_main [ Assign ("out", (i 3 + i 4) * i 3) ]);
  Alcotest.(check int) "negative div wraps" 65533 (run_int_main [ Assign ("out", i (-9) / i 3) ])

let test_locals_and_loops () =
  (* sum of squares 1..10 = 385 *)
  let body =
    [
      Decl (Tint, "s", i 0);
      For
        ( Decl (Tint, "k", i 1),
          v "k" <= i 10,
          Assign ("k", v "k" + i 1),
          [ Assign ("s", v "s" + (v "k" * v "k")) ] );
      Assign ("out", v "s");
    ]
  in
  Alcotest.(check int) "sum of squares" 385 (run_int_main body)

let test_if_and_logic () =
  let body cond = [ If (cond, [ Assign ("out", i 1) ], [ Assign ("out", i 2) ]) ] in
  Alcotest.(check int) "true branch" 1 (run_int_main (body (i 3 < i 4 && i 1 == i 1)));
  Alcotest.(check int) "false branch" 2 (run_int_main (body (i 3 > i 4 || i 1 != i 1)));
  (* short circuit: the right side would divide by zero; our __divu
     returns 0 on /0, so instead use an array store side effect *)
  Alcotest.(check int) "and short-circuits" 1
    (run_int_main (body (Binop (Bland, i 0, i 1) == i 0)))

let test_functions_and_recursion () =
  let fib =
    {
      fname = "fib";
      params = [ (Tint, "n") ];
      ret = Some Tint;
      body =
        [
          If (v "n" < i 2, [ Return (Some (v "n")) ], []);
          Return (Some (Call ("fib", [ v "n" - i 1 ]) + Call ("fib", [ v "n" - i 2 ])));
        ];
    }
  in
  let program =
    {
      globals = [ Gint ("out", 0) ];
      funcs = [ { fname = "main"; params = []; ret = None; body = [ Assign ("out", Call ("fib", [ i 12 ])) ] }; fib ];
    }
  in
  let m = run_program program in
  Alcotest.(check int) "fib 12" 144 (Bitvec.to_int (Machine.mem m 32))

let test_arrays () =
  let program =
    {
      globals = [ Gint ("out", 0); Gint_array ("a", [ 5; 3; 8; 1; 9; 2 ]) ];
      funcs =
        [
          {
            fname = "main";
            params = [];
            ret = None;
            body =
              [
                (* find max *)
                Decl (Tint, "best", idx "a" (i 0));
                For
                  ( Decl (Tint, "k", i 1),
                    v "k" < i 6,
                    Assign ("k", v "k" + i 1),
                    [ If (idx "a" (v "k") > v "best", [ Assign ("best", idx "a" (v "k")) ], []) ]
                  );
                Store ("a", i 0, v "best");
                Assign ("out", idx "a" (i 0));
              ];
          };
        ];
    }
  in
  let m = run_program program in
  Alcotest.(check int) "array max" 9 (Bitvec.to_int (Machine.mem m 33))

let test_float_arith () =
  let x = run_float_main [ Assign ("out", f 1.5 * f 2.0 + f 0.25) ] in
  Alcotest.(check (float 0.01)) "float arith" 3.25 x;
  let x = run_float_main [ Assign ("out", f 10.0 / f 4.0) ] in
  Alcotest.(check (float 0.05)) "newton-raphson divide" 2.5 x;
  let x = run_float_main [ Assign ("out", f (-7.0) / f 2.0) ] in
  Alcotest.(check (float 0.08)) "signed divide" (-3.5) x

let test_float_compare () =
  Alcotest.(check int) "float lt" 1
    (run_int_main [ If (f 1.0 < f 2.0, [ Assign ("out", i 1) ], [ Assign ("out", i 0) ]) ]);
  Alcotest.(check int) "float neg" 1
    (run_int_main
       [ If (Unop (Uneg, f 3.0) < f 0.0, [ Assign ("out", i 1) ], [ Assign ("out", i 0) ]) ])

let test_blocks_exist () =
  let program =
    prog
      [
        Decl (Tint, "k", i 0);
        While (v "k" < i 3, [ Assign ("k", v "k" + i 1) ]);
      ]
  in
  let compiled = compile program in
  Alcotest.(check bool) "has start block" true
    (List.exists (fun b -> b.bb_label = "__start") compiled.blocks);
  Alcotest.(check bool) "has main block" true
    (List.exists (fun b -> b.bb_label = "main") compiled.blocks);
  Alcotest.(check bool) "has loop blocks" true
    (List.exists (fun b -> Stdlib.(b.bb_func = "main" && b.bb_label <> "main")) compiled.blocks);
  List.iter
    (fun b -> Alcotest.(check bool) "sizes nonnegative" true Stdlib.(b.bb_static_size >= 0))
    compiled.blocks

let test_compile_errors () =
  let expect_error name program =
    match compile program with
    | exception Compile_error _ -> ()
    | _ -> Alcotest.failf "%s: expected Compile_error" name
  in
  expect_error "no main" { globals = []; funcs = [] };
  expect_error "unknown variable" (prog [ Assign ("out", v "nope") ]);
  expect_error "type mismatch" (prog ~globals:[ Gint ("out", 0) ] [ Assign ("out", f 1.0) ]);
  expect_error "unknown function" (prog [ Expr (Call ("nope", [])) ]);
  expect_error "float modulo" (prog ~globals:[ Gfloat ("x", 1.0) ] [ Assign ("x", f 1.0 % f 2.0) ]);
  expect_error "bad arity"
    {
      globals = [];
      funcs =
        [
          { fname = "main"; params = []; ret = None; body = [ Expr (Call ("g", [ i 1 ])) ] };
          { fname = "g"; params = []; ret = None; body = [] };
        ];
    }

(* Property: software multiply/divide agree with native arithmetic. *)
let prop_mul_div =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"software mul/div/mod match reference"
       (QCheck.make
          ~print:(fun (a, b) -> Printf.sprintf "a=%d b=%d" a b)
          QCheck.Gen.(pair (int_bound 255) (int_range 1 255)))
       (fun (a, b) ->
         let r =
           run_int_main
             [ Assign ("out", (i a * i b) + ((i a / i b) * i 1000) + ((i a % i b) * i 13)) ]
         in
         let expect = Stdlib.((a * b) + (a / b * 1000) + (a mod b * 13)) land 0xffff in
         r = expect))

let () =
  Alcotest.run "minic"
    [
      ( "compiler",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "locals and loops" `Quick test_locals_and_loops;
          Alcotest.test_case "if and logic" `Quick test_if_and_logic;
          Alcotest.test_case "functions and recursion" `Quick test_functions_and_recursion;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "float arith" `Quick test_float_arith;
          Alcotest.test_case "float compare" `Quick test_float_compare;
          Alcotest.test_case "basic blocks" `Quick test_blocks_exist;
          Alcotest.test_case "compile errors" `Quick test_compile_errors;
        ] );
      ("properties", [ prop_mul_div ]);
    ]
