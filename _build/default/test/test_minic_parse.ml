(* Tests for the Mini-C surface parser: expression grammar, statements,
   globals, diagnostics, and parsed-program execution on the ISS. *)

let parse_ok src =
  match Minic_parse.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %s" e

let parse_fails src =
  match Minic_parse.parse src with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected parse failure for: %s" src

let run_to_out src =
  let program = parse_ok src in
  let compiled = Minic.compile program in
  let m = Machine.create ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional () in
  Machine.reset m;
  match Machine.run ~max_instructions:2_000_000 m (Minic.assemble compiled) with
  | Machine.Exited 0 -> Bitvec.to_int (Machine.mem m 32)
  | o -> Alcotest.failf "program did not exit cleanly: %a" Machine.pp_outcome o

let test_expressions () =
  let expr s =
    match Minic_parse.parse_expr s with
    | Ok e -> e
    | Error e -> Alcotest.failf "expr parse failed: %s" e
  in
  Alcotest.(check bool) "precedence * over +" true
    (expr "1 + 2 * 3"
    = Minic.Binop (Minic.Badd, Minic.Int 1, Minic.Binop (Minic.Bmul, Minic.Int 2, Minic.Int 3)));
  Alcotest.(check bool) "parens" true
    (expr "(1 + 2) * 3"
    = Minic.Binop (Minic.Bmul, Minic.Binop (Minic.Badd, Minic.Int 1, Minic.Int 2), Minic.Int 3));
  Alcotest.(check bool) "left assoc" true
    (expr "8 - 4 - 2"
    = Minic.Binop (Minic.Bsub, Minic.Binop (Minic.Bsub, Minic.Int 8, Minic.Int 4), Minic.Int 2));
  Alcotest.(check bool) "comparison vs shift" true
    (expr "1 << 2 < 3"
    = Minic.Binop (Minic.Blt, Minic.Binop (Minic.Bshl, Minic.Int 1, Minic.Int 2), Minic.Int 3));
  Alcotest.(check bool) "logical chain" true
    (expr "a && b || c"
    = Minic.Binop (Minic.Blor, Minic.Binop (Minic.Bland, Minic.Var "a", Minic.Var "b"), Minic.Var "c"));
  Alcotest.(check bool) "unary" true
    (expr "-x + !y"
    = Minic.Binop
        (Minic.Badd, Minic.Unop (Minic.Uneg, Minic.Var "x"), Minic.Unop (Minic.Unot, Minic.Var "y")));
  Alcotest.(check bool) "call and index" true
    (expr "f(a[2], 0x10)"
    = Minic.Call ("f", [ Minic.Index ("a", Minic.Int 2); Minic.Int 16 ]));
  Alcotest.(check bool) "float literal" true (expr "2.5" = Minic.Float 2.5)

let test_program_sum () =
  let out =
    run_to_out
      {|
        int out = 0;
        void main() {
          int s = 0;
          for (int k = 1; k <= 10; k = k + 1) { s = s + k * k; }
          out = s;
        }
      |}
  in
  Alcotest.(check int) "sum of squares" 385 out

let test_program_recursion () =
  let out =
    run_to_out
      {|
        int out = 0;
        int fib(int n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        void main() { out = fib(12); }
      |}
  in
  Alcotest.(check int) "fib" 144 out

let test_program_arrays_and_comments () =
  let out =
    run_to_out
      {|
        int out = 0;
        // data with an initializer shorter than the array: zero padded
        int data[6] = { 5, 3, 8 };
        void main() {
          /* find the max */
          int best = data[0];
          for (int k = 1; k < 6; k = k + 1) {
            if (data[k] > best) { best = data[k]; }
          }
          data[5] = best;
          out = data[5];
        }
      |}
  in
  Alcotest.(check int) "max with zero padding" 8 out

let test_program_float () =
  let out =
    run_to_out
      {|
        int out = 0;
        float xs[3] = { 1.5, 2.0, -0.5 };
        void main() {
          float s = 0.0;
          for (int k = 0; k < 3; k = k + 1) { s = s + xs[k]; }
          if (s == 3.0) { out = 1; } else { out = 2; }
        }
      |}
  in
  Alcotest.(check int) "float sum compares equal" 1 out

let test_else_if_chain () =
  let src v =
    Printf.sprintf
      {|
        int out = 0;
        void main() {
          int x = %d;
          if (x < 10) { out = 1; }
          else if (x < 20) { out = 2; }
          else { out = 3; }
        }
      |}
      v
  in
  Alcotest.(check int) "first branch" 1 (run_to_out (src 5));
  Alcotest.(check int) "middle branch" 2 (run_to_out (src 15));
  Alcotest.(check int) "else branch" 3 (run_to_out (src 99))

let test_while_and_bitops () =
  let out =
    run_to_out
      {|
        int out = 0;
        void main() {
          int x = 0x2C;
          int count = 0;
          while (x != 0) {
            count = count + (x & 1);
            x = x >> 1;
          }
          out = count;
        }
      |}
  in
  Alcotest.(check int) "popcount 0x2C" 3 out

let test_break_continue () =
  let out =
    run_to_out
      {|
        int out = 0;
        void main() {
          int s = 0;
          for (int k = 0; k < 100; k = k + 1) {
            if (k == 7) { break; }
            if (k % 2 == 1) { continue; }
            s = s + k;   // 0+2+4+6 = 12
          }
          int w = 0;
          while (1 == 1) {
            w = w + 1;
            if (w >= 5) { break; }
          }
          out = s * 100 + w;
        }
      |}
  in
  Alcotest.(check int) "break/continue semantics" 1205 out;
  (* break outside a loop is a compile error *)
  match Minic.compile { Minic.globals = []; funcs = [ { Minic.fname = "main"; params = []; ret = None; body = [ Minic.Break ] } ] } with
  | exception Minic.Compile_error _ -> ()
  | _ -> Alcotest.fail "break outside loop accepted"

let test_diagnostics () =
  parse_fails "int main( { }";
  parse_fails "void main() { int x = ; }";
  parse_fails "void main() { x = 1 }";
  parse_fails "int a[0];";
  parse_fails "void v; ";
  parse_fails "void main() { if x { } }";
  parse_fails "int a[2] = { 1, 2, 3 };";
  parse_fails "/* unterminated";
  (* error message carries a position *)
  match Minic_parse.parse "void main() { ?? }" with
  | Error e ->
    Alcotest.(check bool) "position in message" true
      (String.length e > 5 && String.sub e 0 4 = "line")
  | Ok _ -> Alcotest.fail "expected failure"

let test_store_vs_expr_statement () =
  let out =
    run_to_out
      {|
        int out = 0;
        int a[2] = { 7, 0 };
        int bump(int v) { out = out + v; return 0; }
        void main() {
          a[1] = a[0] + 1;   // store
          bump(a[1]);        // expression statement
        }
      |}
  in
  Alcotest.(check int) "store then call" 8 out

(* round trip: parsed programs equal hand-built ASTs for a small sample *)
let test_ast_equivalence () =
  let parsed = parse_ok "int out = 3; void main() { out = out + 1; }" in
  let expected =
    {
      Minic.globals = [ Minic.Gint ("out", 3) ];
      funcs =
        [
          {
            Minic.fname = "main";
            params = [];
            ret = None;
            body = [ Minic.Assign ("out", Minic.Binop (Minic.Badd, Minic.Var "out", Minic.Int 1)) ];
          };
        ];
    }
  in
  Alcotest.(check bool) "ast equal" true (parsed = expected)

let test_pretty_print_roundtrip () =
  (* every workload kernel survives print -> parse exactly *)
  List.iter
    (fun (b : Workload.benchmark) ->
      let src = Minic_pp.to_source b.Workload.program in
      match Minic_parse.parse src with
      | Ok p ->
        if p <> b.Workload.program then
          Alcotest.failf "%s: reparsed AST differs" b.Workload.name
      | Error e -> Alcotest.failf "%s failed to reparse: %s" b.Workload.name e)
    Workload.all

let test_pretty_print_exprs () =
  let roundtrip s =
    match Minic_parse.parse_expr s with
    | Error e -> Alcotest.failf "parse: %s" e
    | Ok e -> (
      match Minic_parse.parse_expr (Minic_pp.expr_to_source e) with
      | Ok e' -> Alcotest.(check bool) (Printf.sprintf "expr %s" s) true (e = e')
      | Error err -> Alcotest.failf "reparse: %s" err)
  in
  List.iter roundtrip
    [ "1 + 2 * 3"; "-x + !y"; "f(a[2], 0x10)"; "a && b || !c"; "x >> 2 & 0xFF"; "-2.5 * z" ]

let () =
  Alcotest.run "minic_parse"
    [
      ( "parser",
        [
          Alcotest.test_case "expressions" `Quick test_expressions;
          Alcotest.test_case "sum program" `Quick test_program_sum;
          Alcotest.test_case "recursion" `Quick test_program_recursion;
          Alcotest.test_case "arrays and comments" `Quick test_program_arrays_and_comments;
          Alcotest.test_case "floats" `Quick test_program_float;
          Alcotest.test_case "else-if chain" `Quick test_else_if_chain;
          Alcotest.test_case "while and bit ops" `Quick test_while_and_bitops;
          Alcotest.test_case "break and continue" `Quick test_break_continue;
          Alcotest.test_case "diagnostics" `Quick test_diagnostics;
          Alcotest.test_case "store vs expr statement" `Quick test_store_vs_expr_statement;
          Alcotest.test_case "ast equivalence" `Quick test_ast_equivalence;
          Alcotest.test_case "pretty-print roundtrip (workloads)" `Quick
            test_pretty_print_roundtrip;
          Alcotest.test_case "pretty-print roundtrip (exprs)" `Quick test_pretty_print_exprs;
        ] );
    ]
