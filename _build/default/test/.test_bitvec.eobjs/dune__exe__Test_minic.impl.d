test/test_minic.ml: Alcotest Bitvec Fpu_format List Machine Minic Printf QCheck QCheck_alcotest Stdlib
