test/test_fpu.ml: Alcotest Bitvec Float Formal Fpu Fpu_format List Netlist Option Printf QCheck QCheck_alcotest Sim Sim64 Softfloat String
