test/test_formal.ml: Alcotest Array Bitvec Cell Example_circuits Formal List Netlist Printf QCheck QCheck_alcotest Random Sim String
