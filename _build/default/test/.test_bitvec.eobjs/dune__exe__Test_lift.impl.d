test/test_lift.ml: Alcotest Fault Fpu Fpu_format Isa Lift List Machine Netlist Sta Testgen
