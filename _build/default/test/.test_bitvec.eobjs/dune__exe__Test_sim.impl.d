test/test_sim.ml: Alcotest Array Bitvec Cell Example_circuits List Netlist Power Printf QCheck QCheck_alcotest Sim String
