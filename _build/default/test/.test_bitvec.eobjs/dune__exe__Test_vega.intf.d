test/test_vega.mli:
