test/test_minic_parse.ml: Alcotest Bitvec List Machine Minic Minic_parse Minic_pp Printf String Workload
