test/test_aging.ml: Aging Alcotest Cell Float List Printf QCheck QCheck_alcotest Spice
