test/test_sta.ml: Aging Alcotest Alu Array Cell Clock_tree Example_circuits Float List Netlist Printf QCheck QCheck_alcotest Random Sta String
