test/test_hw_alu.mli:
