test/test_workload.ml: Alcotest Alu Array Bitvec Float Fpu Fpu_format List Machine Minic Printf String Workload
