test/test_fpu.mli:
