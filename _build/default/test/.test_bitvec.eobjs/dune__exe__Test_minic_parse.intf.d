test/test_minic_parse.mli:
