test/test_netlist.ml: Alcotest Array Cell Clock_tree Example_circuits Hashtbl List Netlist QCheck QCheck_alcotest Random String
