test/test_netlist_opt.ml: Alcotest Alu Array Bitvec Cell Example_circuits Fault Formal List Netlist Netlist_opt QCheck QCheck_alcotest Random Sim
