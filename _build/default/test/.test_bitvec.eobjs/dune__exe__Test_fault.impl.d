test/test_fault.ml: Alcotest Array Bitvec Example_circuits Fault Formal List Netlist Printf QCheck QCheck_alcotest Sim String
