test/test_lift.mli:
