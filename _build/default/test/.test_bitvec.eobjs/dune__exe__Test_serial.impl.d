test/test_serial.ml: Alcotest Fault Fpu_format Integrate Json Lift List Machine Printf QCheck QCheck_alcotest Serial String Testgen
