test/test_netlist_opt.mli:
