test/test_rv32.ml: Alcotest Alu Fault Fpu_format Isa Lift List Minic Printf Rv32_encode String Workload
