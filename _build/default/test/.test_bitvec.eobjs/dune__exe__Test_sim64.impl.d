test/test_sim64.ml: Alcotest Array Bitvec Cell Example_circuits Float List Netlist Power Printf QCheck QCheck_alcotest Random Sim Sim64 Sys Vcd
