test/test_integrate.ml: Alcotest Alu Bitvec Fault Float Integrate Isa Lift List Machine Minic String Testgen
