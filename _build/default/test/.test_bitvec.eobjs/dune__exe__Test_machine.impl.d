test/test_machine.ml: Alcotest Alu Array Bitvec Fault Fpu Fpu_format Isa List Machine Printf QCheck QCheck_alcotest Random String
