test/test_testgen.ml: Alcotest Array Fault Fpu_format Fun Lift List Printf Testgen
