test/test_vcd.ml: Alcotest Bitvec Example_circuits Fault Filename Formal List Printf Sim String Sys Vcd
