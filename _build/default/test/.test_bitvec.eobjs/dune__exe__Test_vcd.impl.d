test/test_vcd.ml: Alcotest Bitvec Example_circuits Fault Formal List Printf Sim String Vcd
