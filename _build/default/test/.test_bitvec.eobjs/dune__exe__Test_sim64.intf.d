test/test_sim64.mli:
