test/test_vega.ml: Alcotest Clock_tree Experiments Float Formal Lift List Machine Printf Sta String Vega
