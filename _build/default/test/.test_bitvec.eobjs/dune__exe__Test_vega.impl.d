test/test_vega.ml: Alcotest Alu Array Bitvec Clock_tree Experiments Float Formal Lift List Machine Netlist Printf Sim Sim64 Sta String Vega
