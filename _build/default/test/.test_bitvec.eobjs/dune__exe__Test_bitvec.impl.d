test/test_bitvec.ml: Alcotest Bitvec Printf QCheck QCheck_alcotest
