test/test_hw_alu.ml: Alcotest Alu Array Bitvec Cell Clock_tree Float Formal Hw List Netlist Option Printf QCheck QCheck_alcotest Sim Sim64 Sta String
