(* Tests for the gate-level simulator: functional correctness against the
   paper's adder example, SP profiling, and property tests against a
   reference evaluator. *)

let bv w v = Bitvec.create ~width:w v

let test_adder_computes () =
  let nl = Example_circuits.pipelined_adder () in
  let sim = Sim.create nl in
  (* two-cycle pipeline: drive a, b; after two steps o = a + b (mod 4) *)
  let cases = [ (0, 0); (1, 1); (2, 3); (3, 3); (1, 2) ] in
  List.iter
    (fun (a, b) ->
      Sim.set_input sim "a" (bv 2 a);
      Sim.set_input sim "b" (bv 2 b);
      Sim.step sim;
      Sim.step sim;
      Alcotest.(check int)
        (Printf.sprintf "%d+%d" a b)
        ((a + b) land 3)
        (Bitvec.to_int (Sim.output sim "o")))
    cases

let test_pipeline_latency () =
  let nl = Example_circuits.pipelined_adder () in
  let sim = Sim.create nl in
  Sim.set_input sim "a" (bv 2 1);
  Sim.set_input sim "b" (bv 2 2);
  Sim.step sim;
  (* after one cycle the inputs are only in the first rank *)
  Sim.set_input sim "a" (bv 2 0);
  Sim.set_input sim "b" (bv 2 0);
  Sim.step sim;
  Alcotest.(check int) "first result" 3 (Bitvec.to_int (Sim.output sim "o"));
  Sim.step sim;
  Alcotest.(check int) "second result" 0 (Bitvec.to_int (Sim.output sim "o"))

let test_reset () =
  let nl = Example_circuits.pipelined_adder () in
  let sim = Sim.create nl in
  Sim.set_input sim "a" (bv 2 3);
  Sim.set_input sim "b" (bv 2 3);
  Sim.step sim;
  Sim.step sim;
  Sim.reset sim;
  Alcotest.(check int) "cycle cleared" 0 (Sim.cycle sim);
  Alcotest.(check int) "output cleared" 0 (Bitvec.to_int (Sim.output sim "o"));
  Alcotest.(check int) "inputs cleared" 0 (Bitvec.to_int (Sim.input_value sim "a"))

let test_dff_chain_delay () =
  let nl = Example_circuits.dff_chain 4 in
  let sim = Sim.create nl in
  Sim.set_input_bit sim "d" 0 true;
  Sim.step sim;
  Sim.set_input_bit sim "d" 0 false;
  for _ = 1 to 2 do
    Sim.step sim
  done;
  Alcotest.(check int) "pulse not yet out" 0 (Bitvec.to_int (Sim.output sim "q"));
  Sim.step sim;
  Alcotest.(check int) "pulse after 4 cycles" 1 (Bitvec.to_int (Sim.output sim "q"))

let test_lfsr_sequence () =
  let nl = Example_circuits.lfsr4 () in
  let sim = Sim.create nl in
  Alcotest.(check int) "reset state" 1 (Bitvec.to_int (Sim.output sim "q"));
  Sim.set_input_bit sim "enable" 0 false;
  Sim.step sim;
  Alcotest.(check int) "disabled holds" 1 (Bitvec.to_int (Sim.output sim "q"));
  Sim.set_input_bit sim "enable" 0 true;
  (* Fibonacci LFSR x^4+x^3+1 starting from 0001 has period 15 *)
  let period = ref 0 in
  (try
     for i = 1 to 20 do
       Sim.step sim;
       let s = Bitvec.to_int (Sim.output sim "q") in
       Alcotest.(check bool) "never all-zero" true (s <> 0);
       if s = 1 then begin
         period := i;
         raise Exit
       end
     done
   with Exit -> ());
  Alcotest.(check int) "maximal period" 15 !period

let test_sp_profile () =
  let nl = Example_circuits.dff_chain 1 in
  let sim = Sim.create ~profile:true nl in
  (* drive d: 1 for 3 cycles, 0 for 1 cycle -> input net SP = 0.75 *)
  for i = 0 to 3 do
    Sim.set_input_bit sim "d" 0 (i < 3);
    Sim.step sim
  done;
  Alcotest.(check int) "samples" 4 (Sim.samples sim);
  let d_net = Netlist.net_of_port_bit nl "d" 0 in
  Alcotest.(check (float 1e-9)) "input sp" 0.75 (Sim.sp sim d_net);
  (* ff1 output lags by a cycle: values seen during sampling are 0,1,1,1 *)
  Alcotest.(check (float 1e-9)) "ff sp" 0.75 (Sim.sp_of_cell sim "ff1")

let test_toggle_rate () =
  let nl = Example_circuits.dff_chain 1 in
  let sim = Sim.create ~profile:true nl in
  (* d alternates every cycle: toggle rate 1; then constant: rate drops *)
  for k = 0 to 7 do
    Sim.set_input_bit sim "d" 0 (k mod 2 = 0);
    Sim.step sim
  done;
  let d_net = Netlist.net_of_port_bit nl "d" 0 in
  Alcotest.(check (float 1e-9)) "alternating toggles every cycle" 1.0 (Sim.toggle_rate sim d_net);
  Sim.reset sim;
  for _ = 0 to 7 do
    Sim.set_input_bit sim "d" 0 true;
    Sim.step sim
  done;
  Alcotest.(check (float 0.2)) "constant after first edge barely toggles" 0.14
    (Sim.toggle_rate sim d_net)

let test_sp_requires_profiling () =
  let nl = Example_circuits.dff_chain 1 in
  let sim = Sim.create nl in
  Alcotest.check_raises "no profiling" (Invalid_argument "Sim: simulator was created without ~profile:true")
    (fun () -> ignore (Sim.sp sim 0))

let test_hold_clock () =
  let nl = Example_circuits.dff_chain 1 in
  let sim = Sim.create ~profile:true nl in
  Sim.set_input_bit sim "d" 0 true;
  Sim.hold_clock sim;
  Sim.hold_clock sim;
  Alcotest.(check int) "samples accumulate" 2 (Sim.samples sim);
  Alcotest.(check int) "no clock edge" 0 (Sim.cycle sim);
  Alcotest.(check int) "ff kept reset value" 0 (Bitvec.to_int (Sim.output sim "q"))

let test_power_report () =
  let nl = Example_circuits.pipelined_adder () in
  let sim = Sim.create ~profile:true nl in
  Sim.run_random sim ~cycles:500;
  let r = Power.analyze Cell.Library.c28 sim ~clock_mhz:500.0 in
  Alcotest.(check int) "cells" 10 r.Power.cell_count;
  Alcotest.(check bool) "area positive" true (r.Power.total_area_um2 > 5.0);
  Alcotest.(check bool) "leakage positive" true (r.Power.total_leakage_nw > 1.0);
  Alcotest.(check bool) "dynamic positive" true (r.Power.total_dynamic_nw > 0.0);
  (* 6 DFFs dominate the area *)
  let dff_row = List.find (fun row -> row.Power.kind = Cell.Kind.Dff) r.Power.by_kind in
  Alcotest.(check int) "dff count" 6 dff_row.Power.count;
  (* dynamic power scales linearly with the clock *)
  let r2 = Power.analyze Cell.Library.c28 sim ~clock_mhz:1000.0 in
  Alcotest.(check (float 1e-6)) "dynamic scales with f"
    (2.0 *. r.Power.total_dynamic_nw) r2.Power.total_dynamic_nw;
  let text = Power.render r in
  Alcotest.(check bool) "renders" true (String.length text > 100)

let test_width_check () =
  let nl = Example_circuits.pipelined_adder () in
  let sim = Sim.create nl in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Sim.set_input: port a has width 2, value has width 3") (fun () ->
      Sim.set_input sim "a" (bv 3 0))

(* Property: the xor tree netlist computes parity for random stimulus. *)
let prop_xor_tree_parity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"xor tree computes parity"
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 255))
       (fun x ->
         let nl = Example_circuits.comb_xor_tree 8 in
         let sim = Sim.create nl in
         Sim.set_input sim "x" (bv 8 x);
         Sim.settle sim;
         let expect = Bitvec.popcount (bv 8 x) land 1 in
         Bitvec.to_int (Sim.output sim "p") = expect))

(* Property: adder netlist matches golden addition for random streams. *)
let prop_adder_golden =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"pipelined adder matches golden model"
       (QCheck.make
          ~print:(fun l -> String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d+%d" a b) l))
          QCheck.Gen.(list_size (int_range 1 20) (pair (int_bound 3) (int_bound 3))))
       (fun pairs ->
         let nl = Example_circuits.pipelined_adder () in
         let sim = Sim.create nl in
         (* push pairs through the 2-deep pipeline and check with lag 2 *)
         let arr = Array.of_list pairs in
         let ok = ref true in
         Array.iteri
           (fun i (a, b) ->
             Sim.set_input sim "a" (bv 2 a);
             Sim.set_input sim "b" (bv 2 b);
             Sim.step sim;
             if i >= 1 then begin
               let pa, pb = arr.(i - 1) in
               (* output after this step corresponds to the pair from the
                  previous cycle (sampled one edge ago, summed this edge) *)
               if Bitvec.to_int (Sim.output sim "o") <> (pa + pb) land 3 then ok := false
             end)
           arr;
         !ok))

let () =
  Alcotest.run "sim"
    [
      ( "unit",
        [
          Alcotest.test_case "adder computes" `Quick test_adder_computes;
          Alcotest.test_case "pipeline latency" `Quick test_pipeline_latency;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "dff chain delay" `Quick test_dff_chain_delay;
          Alcotest.test_case "lfsr sequence" `Quick test_lfsr_sequence;
          Alcotest.test_case "sp profile" `Quick test_sp_profile;
          Alcotest.test_case "toggle rate" `Quick test_toggle_rate;
          Alcotest.test_case "sp requires profiling" `Quick test_sp_requires_profiling;
          Alcotest.test_case "hold clock" `Quick test_hold_clock;
          Alcotest.test_case "power report" `Quick test_power_report;
          Alcotest.test_case "width check" `Quick test_width_check;
        ] );
      ("properties", [ prop_xor_tree_parity; prop_adder_golden ]);
    ]
