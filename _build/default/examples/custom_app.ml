(* From C source to a protected RISC-V binary.

     dune exec examples/custom_app.exe

   Writes an application in Mini-C's C-like surface syntax, compiles it,
   splices in the Vega test suite at a profile-chosen block, encodes the
   result as actual RV32 machine code, and ships the suite in the JSON
   interchange format a fleet operator would consume. *)

let source =
  {|
    // a tiny fixed-point IIR filter with an energy checksum
    int out = 0;
    int signal[24] = { 8, -3, 12, 7, -9, 4, 15, -2, 6, 11, -8, 3,
                       9, -5, 14, 1, -7, 10, 2, -4, 13, 5, -6, 0 };

    int filter(int x, int state) {
      // y = (3*x + 5*state) >> 3
      return (3 * x + 5 * state) >> 3;
    }

    void main() {
      int state = 0;
      int energy = 0;
      for (int k = 0; k < 24; k = k + 1) {
        state = filter(signal[k], state);
        energy = (energy + state * state) & 0xFFFF;
      }
      out = energy;
    }
  |}

let () =
  print_endline "=== Parse and compile the C source ===";
  let program =
    match Minic_parse.parse source with
    | Ok p -> p
    | Error e -> failwith ("parse error: " ^ e)
  in
  let compiled = Minic.compile program in
  Printf.printf "compiled: %d instructions, %d basic blocks\n"
    (List.length compiled.Minic.code)
    (List.length compiled.Minic.blocks);

  print_endline "\n=== Generate and export the test suite ===";
  let target = Lift.alu_target ~width:16 () in
  let phase1 = { Vega.default_phase1 with Vega.clock_margin = 1.0 } in
  let report = Vega.run_workflow ~phase1 target ~workload:Vega.run_minver_workload in
  let json = Serial.suite_to_string report.Vega.suite in
  Printf.printf "suite: %d cases -> %d bytes of JSON (interchange format)\n"
    (List.length report.Vega.suite.Lift.suite_cases)
    (String.length json);
  (* an operator decodes it without access to the netlist *)
  let suite =
    match Serial.suite_of_string json with Ok s -> s | Error e -> failwith e
  in

  print_endline "\n=== Integrate under a 2% overhead budget ===";
  let machine () = Machine.create ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional () in
  let profile = Integrate.profile (machine ()) compiled in
  let plan = Integrate.plan_integration ~compiled ~profile ~suite () in
  Printf.printf "splice point: %s (count %d, est overhead %.3f%%)\n" plan.Integrate.chosen_block
    plan.Integrate.block_count
    (100.0 *. plan.Integrate.estimated_overhead);
  let protected = Integrate.instrument ~compiled ~suite ~plan in

  print_endline "\n=== Encode to RV32 machine code ===";
  let prog = Isa.assemble protected in
  let words = Rv32_encode.encode_exn prog in
  Printf.printf "%d instructions -> %d RV32 words (%d bytes of code)\n" (Isa.length prog)
    (List.length words)
    (4 * List.length words);
  print_endline "first instructions:";
  List.iteri
    (fun i w ->
      if i < 8 then Printf.printf "  %04x: %08x   %s\n" (4 * i) w (Rv32_encode.disassemble_word w))
    words;

  print_endline "\n=== Run it: healthy vs aged ===";
  let run nl =
    let m =
      match nl with
      | None -> machine ()
      | Some nl -> Machine.create ~alu:(Machine.Alu_netlist nl) ~fpu:Machine.Fpu_functional ()
    in
    Machine.reset m;
    match Machine.run ~max_instructions:5_000_000 m prog with
    | Machine.Exited 0 ->
      Printf.printf "  exit 0 (clean), checksum %04x, %d cycles\n"
        (Bitvec.to_int (Machine.mem m 32))
        (Machine.cycles m)
    | Machine.Exited 1 -> print_endline "  exit 1: SDC detected inside the application"
    | o -> Format.printf "  %a@." Machine.pp_outcome o
  in
  print_endline "healthy CPU:";
  run None;
  print_endline "aged CPU (setup fault b_q0 ~> r_q0, C=0):";
  let pr = List.hd report.Vega.pair_results in
  run
    (Some
       (Fault.failing_netlist target.Lift.netlist
          {
            Fault.start_dff = pr.Lift.start_dff;
            end_dff = pr.Lift.end_dff;
            kind = pr.Lift.violation;
            constant = Fault.C0;
            activation = Fault.Any_transition;
          }));
  print_endline "\ndone."
