examples/custom_app.ml: Bitvec Fault Format Integrate Isa Lift List Machine Minic Minic_parse Printf Rv32_encode Serial String Vega
