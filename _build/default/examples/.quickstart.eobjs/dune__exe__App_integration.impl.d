examples/app_integration.ml: Bitvec Fault Format Integrate Isa Lift List Machine Minic Printf Vega Workload
