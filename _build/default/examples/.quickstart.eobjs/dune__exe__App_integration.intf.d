examples/app_integration.mli:
