examples/fpu_stall_detection.ml: Bitvec Fault Fpu_format Integrate Isa Lift List Machine Printf
