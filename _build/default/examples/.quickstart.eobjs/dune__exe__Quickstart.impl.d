examples/quickstart.ml: Aging Cell Clock_tree Example_circuits Fault Formal List Netlist Printf Random Sim Sta String
