examples/alu_monitoring.mli:
