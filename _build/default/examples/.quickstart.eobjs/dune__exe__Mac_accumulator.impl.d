examples/mac_accumulator.ml: Aging Array Bitvec Cell Clock_tree Fault Float Formal Hw List Netlist Printf Sim Sta
