examples/mac_accumulator.mli:
