examples/fpu_stall_detection.mli:
