examples/quickstart.mli:
