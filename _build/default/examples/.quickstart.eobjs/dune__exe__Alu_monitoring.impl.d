examples/alu_monitoring.ml: Fault Integrate Lift List Machine Printf String Vega
