(* Fleet monitoring: the data-center scenario that motivates the paper.

     dune exec examples/alu_monitoring.exe

   A "fleet" of CPUs shares one ALU design.  Vega's full workflow runs
   once (aging analysis -> error lifting -> suite); the resulting tests
   are then executed routinely on every machine, exactly as a fleet
   operator would embed them.  Some machines have silently aged: their
   ALUs are the failure-model netlists.  The report shows which machines
   the suite flags, and the C aging library artifact is emitted. *)

let () =
  print_endline "=== Vega workflow on the ALU (width 16) ===";
  let target = Lift.alu_target ~width:16 () in
  let phase1 = { Vega.default_phase1 with Vega.clock_margin = 1.0 } in
  let report = Vega.run_workflow ~phase1 target ~workload:Vega.run_minver_workload in
  Printf.printf "clock period: %.0f ps (fresh design meets timing)\n"
    report.Vega.analysis.Vega.clock_period_ps;
  Printf.printf "aging-prone register pairs: %d\n" (List.length report.Vega.pair_results);
  List.iter
    (fun (pr : Lift.pair_result) ->
      Printf.printf "  %s ~> %s (%s): %s, %d test cases\n" pr.Lift.start_dff pr.Lift.end_dff
        (match pr.Lift.violation with
        | Fault.Setup_violation -> "setup"
        | Fault.Hold_violation -> "hold")
        (Lift.classification_name pr.Lift.classification)
        (List.length pr.Lift.cases))
    report.Vega.pair_results;
  Printf.printf "suite: %d cases, %d cycles per sweep — cheap enough to run every second\n\n"
    (List.length report.Vega.suite.Lift.suite_cases)
    report.Vega.suite_cycles;

  print_endline "=== Routine testing across a simulated fleet ===";
  (* machine 0, 3, 6 are healthy; the others aged in different ways *)
  let faults =
    List.filteri
      (fun i _ -> i < 4)
      (List.concat_map
         (fun (pr : Lift.pair_result) ->
           List.map
             (fun constant ->
               {
                 Fault.start_dff = pr.Lift.start_dff;
                 end_dff = pr.Lift.end_dff;
                 kind = pr.Lift.violation;
                 constant;
                 activation = Fault.Any_transition;
               })
             [ Fault.C0; Fault.C1 ])
         report.Vega.pair_results)
  in
  let fleet =
    ("cpu-00 (healthy)", target.Lift.netlist)
    :: List.mapi
         (fun i spec ->
           ( Printf.sprintf "cpu-%02d (aged: %s)" (i + 1) (Fault.describe spec),
             Fault.failing_netlist target.Lift.netlist spec ))
         faults
    @ [ ("cpu-99 (healthy)", target.Lift.netlist) ]
  in
  List.iter
    (fun (name, nl) ->
      let m = Machine.create ~alu:(Machine.Alu_netlist nl) ~fpu:Machine.Fpu_functional () in
      match Integrate.Runner.run_tests m report.Vega.suite Integrate.Runner.Sequential with
      | Ok () -> Printf.printf "  %-40s PASS\n" name
      | Error id -> Printf.printf "  %-40s SDC DETECTED by [%s]\n" name id)
    fleet;

  print_endline "\n=== Exception-based reporting (the library's catch-block mode) ===";
  let aged = Fault.failing_netlist target.Lift.netlist (List.hd faults) in
  let m = Machine.create ~alu:(Machine.Alu_netlist aged) ~fpu:Machine.Fpu_functional () in
  (try Integrate.Runner.run_tests_exn m report.Vega.suite (Integrate.Runner.Random_order 7)
   with Integrate.Runner.Sdc_detected id ->
     Printf.printf "  caught Sdc_detected(%s): quarantining this machine\n" id);

  print_endline "\n=== Generated C aging library (first lines) ===";
  let c = Integrate.emit_c_library ~name:"vega_alu" report.Vega.suite in
  let lines = String.split_on_char '\n' c in
  List.iteri (fun i l -> if i < 18 then print_endline l) lines;
  Printf.printf "... (%d lines total)\n" (List.length lines)
