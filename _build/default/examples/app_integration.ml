(* Profile-guided test integration into a real application.

     dune exec examples/app_integration.exe

   Compiles the crc benchmark with the Mini-C compiler, profiles its
   basic blocks on representative input, picks an integration point under
   a 2% overhead budget, splices the ALU test suite in, and shows that
   (a) the application's answer is unchanged, (b) the overhead is small,
   and (c) the instrumented binary flags an aged ALU from inside the
   application. *)

let () =
  print_endline "=== Compile the application (Mini-C -> RV32-subset) ===";
  let bench = Workload.find "crc" in
  let compiled = Minic.compile bench.Workload.program in
  Printf.printf "crc: %d instructions, %d basic blocks\n"
    (List.length compiled.Minic.code)
    (List.length compiled.Minic.blocks);

  print_endline "\n=== Profile basic blocks on representative input ===";
  let machine () = Machine.create ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional () in
  let profile = Integrate.profile (machine ()) compiled in
  let hot = List.sort (fun (_, a) (_, b) -> compare b a) profile in
  List.iteri
    (fun i (label, count) -> if i < 5 then Printf.printf "  %-24s %6d invocations\n" label count)
    hot;
  Printf.printf "  total dynamic instructions: %d\n"
    (Integrate.dynamic_instructions compiled profile);

  print_endline "\n=== Build the test suite (Vega phases 1+2 on the ALU) ===";
  let target = Lift.alu_target ~width:16 () in
  let phase1 = { Vega.default_phase1 with Vega.clock_margin = 1.0 } in
  let report = Vega.run_workflow ~phase1 target ~workload:Vega.run_minver_workload in
  let suite = report.Vega.suite in
  Printf.printf "suite: %d cases, %d cycles\n" (List.length suite.Lift.suite_cases)
    report.Vega.suite_cycles;

  print_endline "\n=== Plan and splice (2% overhead budget) ===";
  let plan =
    Integrate.plan_integration ~overhead_threshold:0.02 ~compiled ~profile ~suite ()
  in
  Printf.printf "integration point: block %s (invoked %d times)%s\n" plan.Integrate.chosen_block
    plan.Integrate.block_count
    (match plan.Integrate.gate with
    | None -> ""
    | Some k -> Printf.sprintf ", gated to every %d-th invocation" k);
  Printf.printf "estimated overhead: %.3f%%\n" (100.0 *. plan.Integrate.estimated_overhead);
  let instrumented = Integrate.instrument ~compiled ~suite ~plan in

  print_endline "\n=== Healthy run: answer preserved, overhead measured ===";
  let run code =
    let m = machine () in
    Machine.reset m;
    match Machine.run ~max_instructions:5_000_000 m (Isa.assemble code) with
    | Machine.Exited 0 -> (Machine.cycles m, Bitvec.to_int (Machine.mem m Workload.checksum_address))
    | Machine.Exited 1 -> (Machine.cycles m, -1)
    | o -> Format.kasprintf failwith "unexpected outcome: %a" Machine.pp_outcome o
  in
  let base_cycles, base_out = run compiled.Minic.code in
  let inst_cycles, inst_out = run instrumented in
  Printf.printf "baseline:     %7d cycles, checksum %04x\n" base_cycles base_out;
  Printf.printf "instrumented: %7d cycles, checksum %04x\n" inst_cycles inst_out;
  Printf.printf "measured overhead: %.3f%%\n"
    (100.0 *. float_of_int (inst_cycles - base_cycles) /. float_of_int base_cycles);
  assert (base_out = inst_out);

  print_endline "\n=== The same binary on an aged CPU ===";
  let pr = List.hd report.Vega.pair_results in
  let spec =
    {
      Fault.start_dff = pr.Lift.start_dff;
      end_dff = pr.Lift.end_dff;
      kind = pr.Lift.violation;
      constant = Fault.C0;
      activation = Fault.Any_transition;
    }
  in
  Printf.printf "injecting: %s\n" (Fault.describe spec);
  let aged = Fault.failing_netlist target.Lift.netlist spec in
  let m = Machine.create ~alu:(Machine.Alu_netlist aged) ~fpu:Machine.Fpu_functional () in
  Machine.reset m;
  (match Machine.run ~max_instructions:5_000_000 m (Isa.assemble instrumented) with
  | Machine.Exited code when code = Isa.exit_sdc ->
    print_endline "application exited with the SDC code: fault caught in-app before corrupting output"
  | Machine.Exited 0 -> print_endline "fault not caught this run"
  | o -> Format.printf "outcome: %a@." Machine.pp_outcome o);
  print_endline "\ndone."
