(* Quickstart: the paper's Section 3 walk-through, end to end, on the
   2-bit pipelined adder of Listing 1 / Figure 3.

     dune exec examples/quickstart.exe

   It covers every phase: signal-probability profiling (Table 1),
   aging-aware STA finding the $4 ~> $10 setup violation and a
   skew-induced hold violation, failure-model instrumentation with a
   shadow replica, formal trace generation (Table 2), and the failing
   netlist exported as Verilog. *)

let section title =
  Printf.printf "\n=== %s ===\n" title

let () =
  section "1. The hardware module";
  let nl = Example_circuits.pipelined_adder () in
  Printf.printf "netlist %s: %d cells, %d nets, logic depth %d\n" (Netlist.name nl)
    (Netlist.num_cells nl) (Netlist.num_nets nl) (Netlist.logic_depth nl);
  List.iter
    (fun (kind, n) -> Printf.printf "  %-5s x %d\n" (Cell.Kind.to_string kind) n)
    (Netlist.stats nl);

  section "2. Signal-probability profiling (paper Table 1)";
  let sim = Sim.create ~profile:true nl in
  let rng = Random.State.make [| 42 |] in
  let biased p = Random.State.float rng 1.0 < p in
  for _ = 1 to 5000 do
    (* a biased workload: some operand bits idle near constant levels *)
    Sim.set_input_bit sim "a" 0 (biased 0.85);
    Sim.set_input_bit sim "a" 1 (biased 0.55);
    Sim.set_input_bit sim "b" 0 (biased 0.40);
    Sim.set_input_bit sim "b" 1 (biased 0.13);
    Sim.step sim
  done;
  List.iter
    (fun name -> Printf.printf "  SP(%s) = %.2f\n" name (Sim.sp_of_cell sim name))
    [ "$1"; "$2"; "$3"; "$4"; "$5"; "$6"; "$7"; "$8"; "$9"; "$10" ];
  Printf.printf "  -> cell $4 idles near '0': highest BTI stress\n";

  section "3. Aging-aware static timing analysis";
  let lib = Cell.Library.example in
  let aglib = Aging.Timing_library.build lib in
  let sp_of_net n = Sim.sp sim n in
  (* The paper's example: 1 GHz clock, 60 ps setup.  Fresh timing passes. *)
  let period = 1000.0 in
  let flat_tree = Clock_tree.single_domain in
  let fresh = Sta.fresh_timing ~clock_tree:flat_tree lib in
  let fresh = { fresh with Sta.clock_arrival_ps = (fun _ -> 0.0) } in
  let fresh_report = Sta.analyze ~timing:fresh ~clock_period_ps:period nl in
  Printf.printf "  fresh: %d setup violations, %d hold violations (design signs off)\n"
    (List.length fresh_report.Sta.setup_violations)
    (List.length fresh_report.Sta.hold_violations);
  (* After ten years the SP-dependent degradation breaks the long path.
     The example library's cells are much slower than the c28 ones, so we
     apply the aging factors to the example delays directly. *)
  let aged_delay (c : Netlist.cell) =
    let t = Cell.Library.timing lib c.Netlist.kind in
    let f =
      Aging.Timing_library.factor aglib c.Netlist.kind ~sp:(sp_of_net c.Netlist.output)
        ~years:10.0
    in
    (* the walk-through's degradation is stronger than 28nm's: scale so the
       0.9 ns path lands at the paper's 0.946 ns *)
    { t with Cell.tpd_max_ps = t.Cell.tpd_max_ps *. (1.0 +. ((f -. 1.0) *. 0.9 /. 0.06)) }
  in
  let aged = { fresh with Sta.cell_delay = aged_delay } in
  let aged_report = Sta.analyze ~timing:aged ~clock_period_ps:period nl in
  List.iter
    (fun p -> Printf.printf "  aged setup violation: %s\n" (Sta.describe_path nl p))
    aged_report.Sta.setup_violations;

  section "4. Hold violation through clock-network aging";
  let split = Example_circuits.pipelined_adder ~split_domains:true () in
  let skewed =
    { fresh with Sta.clock_arrival_ps = (fun dom -> if dom = 1 then 180.0 else 0.0) }
  in
  let hold_report = Sta.analyze ~timing:skewed ~clock_period_ps:period split in
  List.iter
    (fun p -> Printf.printf "  hold violation: %s\n" (Sta.describe_path split p))
    hold_report.Sta.hold_violations;

  section "5. Failure-model instrumentation (Eq. 2) and shadow replica";
  let spec =
    {
      Fault.start_dff = "$4";
      end_dff = "$10";
      kind = Fault.Setup_violation;
      constant = Fault.C1;
      activation = Fault.Any_transition;
    }
  in
  let inst = Fault.instrument_shadow nl spec in
  Printf.printf "  instrumented netlist: %d cells (original had %d)\n"
    (Netlist.num_cells inst.Fault.netlist) (Netlist.num_cells nl);
  Printf.printf "  cover property: original and shadow output bits differ\n";

  section "6. Formal trace generation (paper Table 2)";
  (match
     Formal.check_cover ~watch:inst.Fault.watch inst.Fault.netlist ~cover:inst.Fault.cover
   with
  | Formal.Trace_found t ->
    print_string (Formal.Trace.to_string t);
    Printf.printf "  replayed on the simulator, the cover holds: %b\n"
      (Formal.Trace.covers inst.Fault.netlist t inst.Fault.cover)
  | _ -> print_endline "  unexpected: no trace");

  section "7. The failing netlist as a reusable artifact (Verilog)";
  let failing = Fault.failing_netlist nl spec in
  let verilog = Netlist.to_verilog failing in
  Printf.printf "%s...\n(%d characters total)\n"
    (String.sub verilog 0 (min 400 (String.length verilog)))
    (String.length verilog);
  print_endline "\nquickstart complete."
