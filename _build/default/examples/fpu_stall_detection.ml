(* FPU aging, from silent result corruption to full CPU stalls.

     dune exec examples/fpu_stall_detection.exe

   Three FPU aging scenarios from the paper's Table 6:
   - a datapath fault that corrupts floating-point results (detected by a
     value comparison),
   - a fault on the valid/ready handshake that freezes the CPU (detected
     by the watchdog as a stall — the paper's "S" outcome),
   - a fault whose only trace is an exception flag (detected through the
     fflags CSR). *)

let fmt = Fpu_format.binary16

let run_suite name suite nl =
  let m =
    Machine.create ~alu:Machine.Alu_functional ~fpu:(Machine.Fpu_netlist nl) ()
  in
  match Integrate.Runner.run_tests m suite Integrate.Runner.Sequential with
  | Ok () -> Printf.printf "  %-46s PASS\n" name
  | Error id -> Printf.printf "  %-46s DETECTED [%s]\n" name id

let () =
  let target = Lift.fpu_target ~fmt () in
  print_endline "=== Error lifting for three FPU register pairs ===";
  let pairs =
    [
      ("b_q0", "r_q5", Fault.Setup_violation, "mantissa datapath");
      ("v_q", "v_out", Fault.Setup_violation, "valid handshake");
      ("a_q14", "fl_q3", Fault.Setup_violation, "inexact status flag");
    ]
  in
  let results =
    List.map
      (fun (s, e, v, what) ->
        let r = Lift.lift_pair target ~start_dff:s ~end_dff:e ~violation:v in
        Printf.printf "  %s ~> %s (%s): %s, %d cases%s\n" s e what
          (Lift.classification_name r.Lift.classification)
          (List.length r.Lift.cases)
          (if List.exists (fun (tc : Lift.test_case) -> tc.Lift.tc_may_stall) r.Lift.cases
           then " (stall expected)"
           else "");
        r)
      pairs
  in
  let suite = Lift.suite_of_results target.Lift.kind results in
  Printf.printf "combined suite: %d cases\n\n" (List.length suite.Lift.suite_cases);

  print_endline "=== Healthy FPU ===";
  run_suite "healthy binary16 FPU" suite target.Lift.netlist;

  print_endline "\n=== Datapath corruption (silent wrong results) ===";
  let datapath_fault =
    Fault.failing_netlist target.Lift.netlist
      {
        Fault.start_dff = "b_q0";
        end_dff = "r_q5";
        kind = Fault.Setup_violation;
        constant = Fault.C1;
        activation = Fault.Any_transition;
      }
  in
  (* show the corruption on a plain computation first: back-to-back
     multiplies whose second operand toggles the aging-prone b_q0 bit *)
  let a = Bitvec.to_int (Fpu_format.of_float fmt 1.5) in
  let b1 = Bitvec.to_int (Fpu_format.of_float fmt 2.0) in
  let b2 = Bitvec.to_int (Fpu_format.of_float fmt 2.0) lor 1 in
  let prog =
    Isa.assemble
      [
        Isa.Li (1, a); Isa.Fmv_wx (1, 1);
        Isa.Li (2, b1); Isa.Fmv_wx (2, 2);
        Isa.Fop (Fpu_format.Fmul, 3, 1, 2);
        Isa.Li (2, b2); Isa.Fmv_wx (2, 2);
        Isa.Fop (Fpu_format.Fmul, 4, 1, 2);
        Isa.Ecall 0;
      ]
  in
  let results nl =
    let m = Machine.create ~alu:Machine.Alu_functional ~fpu:(Machine.Fpu_netlist nl) () in
    Machine.reset m;
    ignore (Machine.run m prog);
    (Fpu_format.to_float fmt (Machine.freg m 3), Fpu_format.to_float fmt (Machine.freg m 4))
  in
  let h1, h2 = results target.Lift.netlist in
  let f1, f2 = results datapath_fault in
  Printf.printf "  op 1: healthy %-10g aged %-10g%s\n" h1 f1
    (if h1 <> f1 then "  <- silently corrupted" else "");
  Printf.printf "  op 2: healthy %-10g aged %-10g%s\n" h2 f2
    (if h2 <> f2 then "  <- silently corrupted" else "");
  run_suite "FPU with b_q0~>r_q5 setup fault (C=1)" suite datapath_fault;

  print_endline "\n=== Handshake fault (CPU stall, the watchdog case) ===";
  let stall_fault =
    Fault.failing_netlist target.Lift.netlist
      {
        Fault.start_dff = "v_q";
        end_dff = "v_out";
        kind = Fault.Setup_violation;
        constant = Fault.C0;
        activation = Fault.Any_transition;
      }
  in
  run_suite "FPU with v_q~>v_out fault (valid token lost)" suite stall_fault;

  print_endline "\n=== Status-flag fault (visible only through fflags) ===";
  let flag_fault =
    Fault.failing_netlist target.Lift.netlist
      {
        Fault.start_dff = "a_q14";
        end_dff = "fl_q3";
        kind = Fault.Setup_violation;
        constant = Fault.C1;
        activation = Fault.Any_transition;
      }
  in
  run_suite "FPU with a_q14~>fl_q3 fault (spurious inexact)" suite flag_fault;
  print_endline "\ndone."
