(** Standard-cell modeling: cell kinds, their logic functions, and the
    timing/electrical data a standard-cell library attaches to them.

    This is the substitution for the commercial 28 nm cell library used in the
    paper: every cell kind carries fresh (unaged) min/max propagation delays,
    D-flip-flop constraints (setup/hold/clk-to-Q), and the electrical
    parameters ({!electrical}) that the SPICE-lite analog model
    ({!module:Spice}) consumes to derive aged delays. *)

(** {1 Cell kinds} *)

module Kind : sig
  (** The kinds of cells a netlist may instantiate.  [Mux2] computes
      [if s then b else a] with input order [a; b; s].  [Dff] is a D
      flip-flop (input [d], output [q]) clocked by its clock-domain's
      (possibly skewed) edge. *)
  type t =
    | Tie0   (** constant 0, no inputs *)
    | Tie1   (** constant 1, no inputs *)
    | Buf
    | Not
    | And2
    | Or2
    | Xor2
    | Nand2
    | Nor2
    | Xnor2
    | Mux2
    | Dff

  val arity : t -> int
  (** Number of data inputs ([Dff] has 1: its [d] pin). *)

  val is_sequential : t -> bool
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
  val equal : t -> t -> bool
  val compare : t -> t -> int

  val all : t list
  (** Every kind, in declaration order. *)

  val combinational : t list
  (** Every combinational kind with at least one input. *)

  val eval : t -> bool array -> bool
  (** [eval kind inputs] is the combinational function of [kind].
      @raise Invalid_argument for [Dff] or on arity mismatch. *)
end

(** {1 Timing data} *)

type timing = {
  tpd_min_ps : float;  (** minimum propagation delay, picoseconds *)
  tpd_max_ps : float;  (** maximum propagation delay, picoseconds *)
}

type dff_timing = {
  clk_to_q_min_ps : float;
  clk_to_q_max_ps : float;
  setup_ps : float;
  hold_ps : float;
}

(** {1 Electrical data for SPICE-lite} *)

type electrical = {
  vdd : float;        (** supply voltage, volts *)
  vth0 : float;       (** nominal (fresh) threshold voltage, volts *)
  alpha : float;      (** alpha-power-law velocity-saturation exponent *)
  cload_ff : float;   (** effective switched load capacitance, femtofarads *)
  stack_factor : float;
  (** relative series-stack resistance of the pull-up network; larger stacks
      amplify the delay sensitivity to threshold-voltage shifts *)
}

(** {1 Physical data (area / leakage)} *)

type physical = {
  area_um2 : float;  (** placed cell area *)
  leakage_nw_at_0 : float;  (** leakage power when the output rests at 0 *)
  leakage_nw_at_1 : float;  (** leakage power when the output rests at 1 *)
}

(** {1 Libraries} *)

module Library : sig
  type t

  val name : t -> string
  val timing : t -> Kind.t -> timing
  val dff : t -> dff_timing
  val electrical : t -> Kind.t -> electrical
  val physical : t -> Kind.t -> physical

  val example : t
  (** The didactic library of the paper's Section 3 example: every
      combinational cell and the DFF have min delay 100 ps and max delay
      300 ps; the DFF needs 60 ps setup and 30 ps hold. *)

  val c28 : t
  (** The synthetic 28 nm-like library used for the ALU/FPU evaluation:
      per-kind delays in the tens-of-picoseconds range with realistic
      relative ordering (inverters fastest, XOR-class and MUX cells
      slowest). *)
end
