module Kind = struct
  type t =
    | Tie0
    | Tie1
    | Buf
    | Not
    | And2
    | Or2
    | Xor2
    | Nand2
    | Nor2
    | Xnor2
    | Mux2
    | Dff

  let arity = function
    | Tie0 | Tie1 -> 0
    | Buf | Not | Dff -> 1
    | And2 | Or2 | Xor2 | Nand2 | Nor2 | Xnor2 -> 2
    | Mux2 -> 3

  let is_sequential = function Dff -> true | _ -> false

  let to_string = function
    | Tie0 -> "TIE0"
    | Tie1 -> "TIE1"
    | Buf -> "BUF"
    | Not -> "NOT"
    | And2 -> "AND2"
    | Or2 -> "OR2"
    | Xor2 -> "XOR2"
    | Nand2 -> "NAND2"
    | Nor2 -> "NOR2"
    | Xnor2 -> "XNOR2"
    | Mux2 -> "MUX2"
    | Dff -> "DFF"

  let pp fmt k = Format.pp_print_string fmt (to_string k)
  let equal (a : t) b = a = b
  let compare (a : t) b = compare a b

  let all = [ Tie0; Tie1; Buf; Not; And2; Or2; Xor2; Nand2; Nor2; Xnor2; Mux2; Dff ]
  let combinational = [ Buf; Not; And2; Or2; Xor2; Nand2; Nor2; Xnor2; Mux2 ]

  let eval kind inputs =
    let expect n =
      if Array.length inputs <> n then
        invalid_arg
          (Printf.sprintf "Cell.Kind.eval: %s expects %d inputs, got %d" (to_string kind) n
             (Array.length inputs))
    in
    match kind with
    | Tie0 -> expect 0; false
    | Tie1 -> expect 0; true
    | Buf -> expect 1; inputs.(0)
    | Not -> expect 1; not inputs.(0)
    | And2 -> expect 2; inputs.(0) && inputs.(1)
    | Or2 -> expect 2; inputs.(0) || inputs.(1)
    | Xor2 -> expect 2; inputs.(0) <> inputs.(1)
    | Nand2 -> expect 2; not (inputs.(0) && inputs.(1))
    | Nor2 -> expect 2; not (inputs.(0) || inputs.(1))
    | Xnor2 -> expect 2; inputs.(0) = inputs.(1)
    | Mux2 -> expect 3; if inputs.(2) then inputs.(1) else inputs.(0)
    | Dff -> invalid_arg "Cell.Kind.eval: DFF is sequential"
end

type timing = { tpd_min_ps : float; tpd_max_ps : float }

type dff_timing = {
  clk_to_q_min_ps : float;
  clk_to_q_max_ps : float;
  setup_ps : float;
  hold_ps : float;
}

type electrical = {
  vdd : float;
  vth0 : float;
  alpha : float;
  cload_ff : float;
  stack_factor : float;
}

type physical = {
  area_um2 : float;  (** placed cell area *)
  leakage_nw_at_0 : float;  (** leakage power when the output rests at 0 *)
  leakage_nw_at_1 : float;  (** leakage power when the output rests at 1 *)
}

module Library = struct
  type t = {
    name : string;
    timing : Kind.t -> timing;
    dff : dff_timing;
    electrical : Kind.t -> electrical;
    physical : Kind.t -> physical;
  }

  let name t = t.name
  let timing t = t.timing
  let dff t = t.dff
  let electrical t = t.electrical
  let physical t = t.physical

  (* default physical data scaled by a rough gate-complexity weight *)
  let default_physical : Kind.t -> physical = function
    | Tie0 | Tie1 -> { area_um2 = 0.2; leakage_nw_at_0 = 0.05; leakage_nw_at_1 = 0.05 }
    | Buf -> { area_um2 = 0.5; leakage_nw_at_0 = 0.4; leakage_nw_at_1 = 0.35 }
    | Not -> { area_um2 = 0.35; leakage_nw_at_0 = 0.35; leakage_nw_at_1 = 0.3 }
    | And2 -> { area_um2 = 0.7; leakage_nw_at_0 = 0.6; leakage_nw_at_1 = 0.5 }
    | Or2 -> { area_um2 = 0.7; leakage_nw_at_0 = 0.55; leakage_nw_at_1 = 0.6 }
    | Nand2 -> { area_um2 = 0.55; leakage_nw_at_0 = 0.5; leakage_nw_at_1 = 0.45 }
    | Nor2 -> { area_um2 = 0.55; leakage_nw_at_0 = 0.45; leakage_nw_at_1 = 0.5 }
    | Xor2 -> { area_um2 = 1.1; leakage_nw_at_0 = 0.9; leakage_nw_at_1 = 0.85 }
    | Xnor2 -> { area_um2 = 1.1; leakage_nw_at_0 = 0.85; leakage_nw_at_1 = 0.9 }
    | Mux2 -> { area_um2 = 1.0; leakage_nw_at_0 = 0.8; leakage_nw_at_1 = 0.8 }
    | Dff -> { area_um2 = 2.2; leakage_nw_at_0 = 1.6; leakage_nw_at_1 = 1.5 }

  (* The didactic library from the paper's Section 3 walk-through. *)
  let example =
    let timing _ = { tpd_min_ps = 100.0; tpd_max_ps = 300.0 } in
    let dff =
      { clk_to_q_min_ps = 100.0; clk_to_q_max_ps = 300.0; setup_ps = 60.0; hold_ps = 30.0 }
    in
    let electrical _ =
      { vdd = 0.9; vth0 = 0.30; alpha = 1.3; cload_ff = 2.0; stack_factor = 1.0 }
    in
    { name = "example"; timing; dff; electrical; physical = default_physical }

  (* A synthetic 28 nm-like library.  Delay ordering follows typical
     standard-cell data: inverters/buffers fastest; XOR/XNOR/MUX slowest
     because of their internal transmission-gate structures. *)
  let c28 =
    let timing : Kind.t -> timing = function
      | Tie0 | Tie1 -> { tpd_min_ps = 0.0; tpd_max_ps = 0.0 }
      | Buf -> { tpd_min_ps = 8.0; tpd_max_ps = 16.0 }
      | Not -> { tpd_min_ps = 6.0; tpd_max_ps = 12.0 }
      | And2 -> { tpd_min_ps = 14.0; tpd_max_ps = 28.0 }
      | Or2 -> { tpd_min_ps = 14.0; tpd_max_ps = 30.0 }
      | Nand2 -> { tpd_min_ps = 10.0; tpd_max_ps = 20.0 }
      | Nor2 -> { tpd_min_ps = 11.0; tpd_max_ps = 24.0 }
      | Xor2 -> { tpd_min_ps = 20.0; tpd_max_ps = 42.0 }
      | Xnor2 -> { tpd_min_ps = 20.0; tpd_max_ps = 44.0 }
      | Mux2 -> { tpd_min_ps = 18.0; tpd_max_ps = 38.0 }
      | Dff -> { tpd_min_ps = 0.0; tpd_max_ps = 0.0 }
    in
    let dff =
      { clk_to_q_min_ps = 35.0; clk_to_q_max_ps = 75.0; setup_ps = 28.0; hold_ps = 32.0 }
    in
    let electrical : Kind.t -> electrical = function
      | Tie0 | Tie1 ->
        { vdd = 0.9; vth0 = 0.30; alpha = 1.3; cload_ff = 0.0; stack_factor = 1.0 }
      | Buf -> { vdd = 0.9; vth0 = 0.30; alpha = 1.3; cload_ff = 1.6; stack_factor = 1.0 }
      | Not -> { vdd = 0.9; vth0 = 0.30; alpha = 1.3; cload_ff = 1.2; stack_factor = 1.0 }
      | And2 -> { vdd = 0.9; vth0 = 0.31; alpha = 1.3; cload_ff = 2.2; stack_factor = 1.15 }
      | Or2 -> { vdd = 0.9; vth0 = 0.31; alpha = 1.3; cload_ff = 2.3; stack_factor = 1.35 }
      | Nand2 -> { vdd = 0.9; vth0 = 0.30; alpha = 1.3; cload_ff = 1.8; stack_factor = 1.1 }
      | Nor2 -> { vdd = 0.9; vth0 = 0.30; alpha = 1.3; cload_ff = 1.9; stack_factor = 1.4 }
      | Xor2 -> { vdd = 0.9; vth0 = 0.32; alpha = 1.3; cload_ff = 3.1; stack_factor = 1.25 }
      | Xnor2 -> { vdd = 0.9; vth0 = 0.32; alpha = 1.3; cload_ff = 3.2; stack_factor = 1.25 }
      | Mux2 -> { vdd = 0.9; vth0 = 0.31; alpha = 1.3; cload_ff = 2.8; stack_factor = 1.2 }
      | Dff -> { vdd = 0.9; vth0 = 0.30; alpha = 1.3; cload_ff = 2.5; stack_factor = 1.1 }
    in
    { name = "c28"; timing; dff; electrical; physical = default_physical }
end
