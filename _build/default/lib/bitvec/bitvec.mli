(** Fixed-width two's-complement bitvectors.

    A value of type {!t} is a bitvector of a given [width] (1 to 62 bits),
    stored as the unsigned integer formed by its bits.  All operations are
    width-preserving and wrap modulo [2^width], mirroring the semantics of
    hardware datapaths.  These bitvectors back the golden (functional) models
    of the ALU and FPU, the instruction-set simulator, and the values that
    formal counterexample traces assign to module ports. *)

type t

(** {1 Construction} *)

val max_width : int
(** Largest supported width (62, so that every value fits a native [int]). *)

val create : width:int -> int -> t
(** [create ~width v] is the bitvector of [width] bits whose value is
    [v mod 2^width] (the representative in [[0, 2^width)], also for negative
    [v]).  @raise Invalid_argument if [width] is not in [[1, max_width]]. *)

val zero : int -> t
(** [zero width] is the all-zeros vector. *)

val ones : int -> t
(** [ones width] is the all-ones vector. *)

val one : int -> t
(** [one width] is the vector with value 1. *)

val of_bool : bool -> t
(** 1-bit vector from a boolean. *)

val of_bits : bool list -> t
(** [of_bits bits] builds a vector from a list of bits given
    least-significant first.  @raise Invalid_argument on empty or oversized
    lists. *)

(** {1 Observation} *)

val width : t -> int
val to_int : t -> int
(** Unsigned value, in [[0, 2^width)]. *)

val to_signed : t -> int
(** Two's-complement signed value, in [[-2^(width-1), 2^(width-1))]. *)

val bit : t -> int -> bool
(** [bit v i] is bit [i] (0 = LSB).  @raise Invalid_argument if out of
    range. *)

val bits : t -> bool list
(** All bits, least-significant first. *)

val msb : t -> bool
val is_zero : t -> bool
val equal : t -> t -> bool
val compare_unsigned : t -> t -> int
val compare_signed : t -> t -> int

val to_string : t -> string
(** Binary literal in Verilog style, e.g. ["4'b0110"]. *)

val to_hex_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Arithmetic (wrapping, width-preserving)} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val add_carry : t -> t -> bool -> t * bool
(** [add_carry a b cin] returns the sum and the carry-out bit. *)

(** {1 Bitwise} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** {1 Shifts} *)

val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t

(** {1 Comparison predicates (as in RV32 SLT/SLTU)} *)

val ult : t -> t -> bool
val slt : t -> t -> bool

(** {1 Structural operations} *)

val extract : t -> hi:int -> lo:int -> t
(** [extract v ~hi ~lo] is bits [hi..lo] as a vector of width
    [hi - lo + 1]. *)

val concat : t -> t -> t
(** [concat hi lo] places [hi] in the upper bits. *)

val zero_extend : t -> int -> t
val sign_extend : t -> int -> t

val set_bit : t -> int -> bool -> t
(** Functional single-bit update. *)

val popcount : t -> int
