type t = { width : int; value : int }

let max_width = 62

let mask width = (1 lsl width) - 1

let check_width width =
  if width < 1 || width > max_width then
    invalid_arg (Printf.sprintf "Bitvec: width %d out of range [1, %d]" width max_width)

let create ~width v =
  check_width width;
  { width; value = v land mask width }

let zero width = create ~width 0
let ones width = create ~width (mask width)
let one width = create ~width 1
let of_bool b = { width = 1; value = (if b then 1 else 0) }

let of_bits bits =
  let width = List.length bits in
  check_width width;
  let value =
    List.fold_left (fun (acc, i) b -> ((if b then acc lor (1 lsl i) else acc), i + 1)) (0, 0) bits
    |> fst
  in
  { width; value }

let width v = v.width
let to_int v = v.value

let to_signed v =
  if v.value land (1 lsl (v.width - 1)) <> 0 then v.value - (1 lsl v.width) else v.value

let bit v i =
  if i < 0 || i >= v.width then
    invalid_arg (Printf.sprintf "Bitvec.bit: index %d out of range for width %d" i v.width);
  v.value land (1 lsl i) <> 0

let bits v = List.init v.width (fun i -> bit v i)
let msb v = bit v (v.width - 1)
let is_zero v = v.value = 0
let equal a b = a.width = b.width && a.value = b.value
let compare_unsigned a b = compare a.value b.value
let compare_signed a b = compare (to_signed a) (to_signed b)

let to_string v =
  let buf = Buffer.create (v.width + 4) in
  Buffer.add_string buf (string_of_int v.width);
  Buffer.add_string buf "'b";
  for i = v.width - 1 downto 0 do
    Buffer.add_char buf (if bit v i then '1' else '0')
  done;
  Buffer.contents buf

let to_hex_string v = Printf.sprintf "%d'h%x" v.width v.value
let pp fmt v = Format.pp_print_string fmt (to_string v)

let same_width a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Bitvec: width mismatch (%d vs %d)" a.width b.width)

let add a b =
  same_width a b;
  { a with value = (a.value + b.value) land mask a.width }

let sub a b =
  same_width a b;
  { a with value = (a.value - b.value) land mask a.width }

let neg a = { a with value = -a.value land mask a.width }

let mul a b =
  same_width a b;
  (* Split to avoid overflow past 62 bits for wide operands: wrap-around
     multiplication only needs the low [width] bits, computed limb-wise. *)
  if a.width <= 31 then { a with value = a.value * b.value land mask a.width }
  else
    let lo_bits = 31 in
    let a_lo = a.value land mask lo_bits and a_hi = a.value lsr lo_bits in
    let b_lo = b.value land mask lo_bits and b_hi = b.value lsr lo_bits in
    let low = a_lo * b_lo in
    let mid = ((a_lo * b_hi) + (a_hi * b_lo)) lsl lo_bits in
    { a with value = (low + mid) land mask a.width }

let add_carry a b cin =
  same_width a b;
  let total = a.value + b.value + if cin then 1 else 0 in
  ({ a with value = total land mask a.width }, total lsr a.width <> 0)

let logand a b = same_width a b; { a with value = a.value land b.value }
let logor a b = same_width a b; { a with value = a.value lor b.value }
let logxor a b = same_width a b; { a with value = a.value lxor b.value }
let lognot a = { a with value = lnot a.value land mask a.width }

let clamp_shift v n = if n >= v.width then v.width else if n < 0 then 0 else n

let shift_left v n =
  let n = clamp_shift v n in
  if n = v.width then zero v.width else { v with value = (v.value lsl n) land mask v.width }

let shift_right_logical v n =
  let n = clamp_shift v n in
  if n = v.width then zero v.width else { v with value = v.value lsr n }

let shift_right_arith v n =
  let n = clamp_shift v n in
  if n = 0 then v
  else begin
    let sign = msb v in
    let shifted = if n = v.width then 0 else v.value lsr n in
    let fill = if sign then mask v.width lxor mask (max 0 (v.width - n)) else 0 in
    { v with value = (shifted lor fill) land mask v.width }
  end

let ult a b = same_width a b; a.value < b.value
let slt a b = same_width a b; to_signed a < to_signed b

let extract v ~hi ~lo =
  if lo < 0 || hi >= v.width || hi < lo then
    invalid_arg
      (Printf.sprintf "Bitvec.extract: [%d:%d] out of range for width %d" hi lo v.width);
  create ~width:(hi - lo + 1) (v.value lsr lo)

let concat hi lo =
  let width = hi.width + lo.width in
  check_width width;
  { width; value = (hi.value lsl lo.width) lor lo.value }

let zero_extend v w =
  if w < v.width then invalid_arg "Bitvec.zero_extend: target narrower than source";
  check_width w;
  { width = w; value = v.value }

let sign_extend v w =
  if w < v.width then invalid_arg "Bitvec.sign_extend: target narrower than source";
  check_width w;
  { width = w; value = to_signed v land mask w }

let set_bit v i b =
  if i < 0 || i >= v.width then
    invalid_arg (Printf.sprintf "Bitvec.set_bit: index %d out of range for width %d" i v.width);
  let m = 1 lsl i in
  { v with value = (if b then v.value lor m else v.value land lnot m) }

let popcount v =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 v.value
