module B = Netlist.Builder

let pipelined_adder ?(split_domains = false) () =
  let b = B.create "paper_adder" in
  let a = B.add_input b "a" 2 in
  let bb = B.add_input b "b" 2 in
  let dff ?(domain = 0) name d = B.add_cell ~name ~clock_domain:domain b Cell.Kind.Dff [| d |] in
  let q1 = dff "$1" a.(0) in
  let q2 = dff "$2" a.(1) in
  let q3 = dff "$3" bb.(0) in
  let q4 = dff "$4" bb.(1) in
  let y5 = B.add_cell ~name:"$5" b Cell.Kind.Xor2 [| q1; q3 |] in
  let y6 = B.add_cell ~name:"$6" b Cell.Kind.And2 [| q1; q3 |] in
  let y7 = B.add_cell ~name:"$7" b Cell.Kind.Xor2 [| q2; q4 |] in
  let y8 = B.add_cell ~name:"$8" b Cell.Kind.Xor2 [| y7; y6 |] in
  let q9 = dff ~domain:(if split_domains then 1 else 0) "$9" y5 in
  let q10 = dff "$10" y8 in
  B.add_output b "o" [| q9; q10 |];
  B.finish b

let dff_chain n =
  if n < 1 then invalid_arg "Example_circuits.dff_chain: need at least one stage";
  let b = B.create (Printf.sprintf "dff_chain%d" n) in
  let d = B.add_input b "d" 1 in
  let rec stages i prev =
    if i > n then prev
    else
      let q =
        B.add_cell ~name:(Printf.sprintf "ff%d" i) ~clock_domain:0 b Cell.Kind.Dff [| prev |]
      in
      stages (i + 1) q
  in
  let last = stages 1 d.(0) in
  B.add_output b "q" [| last |];
  B.finish b

let lfsr4 () =
  let b = B.create "lfsr4" in
  let enable = B.add_input b "enable" 1 in
  (* Forward-declare the feedback by creating the register cells on dummy
     nets first is impossible in a pure builder; instead build the DFFs on
     placeholder inputs and rewire. *)
  let tie0 = B.add_cell ~name:"tie0" b Cell.Kind.Tie0 [||] in
  let q = Array.init 4 (fun i ->
      B.add_cell ~name:(Printf.sprintf "s%d" i) ~clock_domain:0
        ~reset_value:(i = 0) b Cell.Kind.Dff [| tie0 |])
  in
  let feedback = B.add_cell ~name:"fb" b Cell.Kind.Xor2 [| q.(3); q.(2) |] in
  (* next state when enabled: shift left, insert feedback at bit 0 *)
  let next0 = B.add_cell ~name:"n0" b Cell.Kind.Mux2 [| q.(0); feedback; enable.(0) |] in
  let next i = B.add_cell ~name:(Printf.sprintf "n%d" i) b Cell.Kind.Mux2 [| q.(i); q.(i - 1); enable.(0) |] in
  let n1 = next 1 and n2 = next 2 and n3 = next 3 in
  (* Rewire DFF inputs: the DFF cells are ids 1..4 (tie0 is id 0). *)
  B.rewire_input b ~cell_id:1 ~pin:0 next0;
  B.rewire_input b ~cell_id:2 ~pin:0 n1;
  B.rewire_input b ~cell_id:3 ~pin:0 n2;
  B.rewire_input b ~cell_id:4 ~pin:0 n3;
  B.add_output b "q" q;
  B.finish b

let comb_xor_tree n =
  if n < 1 then invalid_arg "Example_circuits.comb_xor_tree: need at least one input bit";
  let b = B.create (Printf.sprintf "xor_tree%d" n) in
  let x = B.add_input b "x" n in
  let rec reduce = function
    | [] -> assert false
    | [ v ] -> v
    | v1 :: v2 :: rest -> reduce (rest @ [ B.add_cell b Cell.Kind.Xor2 [| v1; v2 |] ])
  in
  let p = reduce (Array.to_list x) in
  B.add_output b "p" [| p |];
  B.finish b
