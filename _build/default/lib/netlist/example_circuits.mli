(** Small, hand-built netlists: the paper's running example and a few
    circuits used throughout the test suites. *)

val pipelined_adder : ?split_domains:bool -> unit -> Netlist.t
(** The 2-bit pipelined adder of the paper's Listing 1 / Figure 3: inputs
    [a[1:0]] and [b[1:0]] are registered in DFFs [$1]-[$4], summed by cells
    [$5]-[$8] (XOR/AND/XOR/XOR), and the sum [o[1:0]] is registered in DFFs
    [$9]-[$10].  Cell instance names match the paper.

    With [split_domains] (default false), DFF [$9] is placed in clock
    domain 1 — the clock-gated subtree of {!Clock_tree.two_domain_gated} —
    which reproduces the hold-violation scenario of Section 3.2.2. *)

val dff_chain : int -> Netlist.t
(** [dff_chain n] is a 1-bit shift register of [n] DFFs between input [d]
    and output [q]; the minimal sequential circuit. *)

val lfsr4 : unit -> Netlist.t
(** A 4-bit Fibonacci LFSR (taps 4,3) with an [enable] input and state
    output [q[3:0]]; reset value 0001.  A self-feeding circuit exercising
    feedback through DFFs. *)

val comb_xor_tree : int -> Netlist.t
(** [comb_xor_tree n] is a pure combinational parity tree over an [n]-bit
    input [x] producing a 1-bit output [p]. *)
