type stats = {
  cells_before : int;
  cells_after : int;
  folded : int;
  dead_removed : int;
}

(* Value class of an original net after folding. *)
type cls = Const of bool | Same of Netlist.net  (* canonical original net *)

let classify nl =
  let n = Netlist.num_nets nl in
  let cls = Array.init n (fun i -> Same i) in
  let folded = ref 0 in
  let rec resolve net =
    match cls.(net) with
    | Const b -> Const b
    | Same m when m = net -> Same net
    | Same m -> resolve m
  in
  (* primary inputs and DFF outputs stay canonical; comb cells fold in
     topological order *)
  Array.iter
    (fun id ->
      let c = Netlist.cell nl id in
      let out = c.Netlist.output in
      let inp k = resolve c.Netlist.inputs.(k) in
      let demote v =
        cls.(out) <- v;
        incr folded
      in
      let kind = c.Netlist.kind in
      match kind with
      | Cell.Kind.Tie0 -> cls.(out) <- Const false
      | Cell.Kind.Tie1 -> cls.(out) <- Const true
      | Cell.Kind.Buf -> demote (inp 0)
      | Cell.Kind.Not -> (
        match inp 0 with Const b -> demote (Const (not b)) | Same _ -> ())
      | Cell.Kind.And2 | Cell.Kind.Or2 | Cell.Kind.Xor2 | Cell.Kind.Nand2 | Cell.Kind.Nor2
      | Cell.Kind.Xnor2 -> (
        match (inp 0, inp 1) with
        | Const a, Const b -> demote (Const (Cell.Kind.eval kind [| a; b |]))
        | Const cb, Same m | Same m, Const cb -> (
          (* one constant input *)
          match (kind, cb) with
          | Cell.Kind.And2, false -> demote (Const false)
          | Cell.Kind.And2, true -> demote (Same m)
          | Cell.Kind.Or2, true -> demote (Const true)
          | Cell.Kind.Or2, false -> demote (Same m)
          | Cell.Kind.Xor2, false -> demote (Same m)
          | Cell.Kind.Nand2, false -> demote (Const true)
          | Cell.Kind.Nor2, true -> demote (Const false)
          | Cell.Kind.Xnor2, true -> demote (Same m)
          | _ -> ()  (* would need an inverter: keep the gate *))
        | Same a, Same b when a = b -> (
          match kind with
          | Cell.Kind.And2 | Cell.Kind.Or2 -> demote (Same a)
          | Cell.Kind.Xor2 -> demote (Const false)
          | Cell.Kind.Xnor2 -> demote (Const true)
          | _ -> ()  (* NAND/NOR of x,x is NOT x: keep *))
        | _ -> ())
      | Cell.Kind.Mux2 -> (
        match inp 2 with
        | Const false -> demote (inp 0)
        | Const true -> demote (inp 1)
        | Same _ -> (
          match (inp 0, inp 1) with
          | Same a, Same b when a = b -> demote (Same a)
          | Const a, Const b when a = b -> demote (Const a)
          | _ -> ()))
      | Cell.Kind.Dff -> ())
    (Netlist.topo_order nl);
  (cls, resolve, !folded)

(* Liveness on the original graph: nets needed by output ports, walking
   backward through kept logic and registers. *)
let live_cells nl resolve =
  let live = Array.make (Netlist.num_cells nl) false in
  let seen_net = Array.make (Netlist.num_nets nl) false in
  let rec need net =
    match resolve net with
    | Const _ -> ()
    | Same canon ->
      if not seen_net.(canon) then begin
        seen_net.(canon) <- true;
        match Netlist.driver nl canon with
        | Netlist.Driven_by_input _ -> ()
        | Netlist.Driven_by_cell id ->
          live.(id) <- true;
          Array.iter need (Netlist.cell nl id).Netlist.inputs
      end
  in
  List.iter
    (fun (p : Netlist.port) -> Array.iter need p.Netlist.port_nets)
    (Netlist.outputs nl);
  live

let optimize nl =
  let cls, resolve, folded = classify nl in
  ignore cls;
  let live = live_cells nl resolve in
  let b = Netlist.Builder.create (Netlist.name nl) in
  (* ports in original order so interfaces match exactly *)
  let net_map = Hashtbl.create 64 in
  List.iter
    (fun (p : Netlist.port) ->
      let nets = Netlist.Builder.add_input b p.Netlist.port_name (Array.length p.Netlist.port_nets) in
      Array.iteri (fun i orig -> Hashtbl.replace net_map orig nets.(i)) p.Netlist.port_nets)
    (Netlist.inputs nl);
  let tie0 = ref None and tie1 = ref None in
  let tie v =
    let cache = if v then tie1 else tie0 in
    match !cache with
    | Some n -> n
    | None ->
      let n =
        Netlist.Builder.add_cell ~name:(if v then "_opt_tie1" else "_opt_tie0") b
          (if v then Cell.Kind.Tie1 else Cell.Kind.Tie0)
          [||]
      in
      cache := Some n;
      n
  in
  (* pass 1: create live DFFs (placeholder D) and live kept comb cells in
     topo order *)
  let dff_ids = ref [] in
  List.iter
    (fun id ->
      let c = Netlist.cell nl id in
      if live.(id) then begin
        let new_id, out =
          Netlist.Builder.add_cell_with_id ~name:c.Netlist.name
            ~clock_domain:c.Netlist.clock_domain ~reset_value:c.Netlist.reset_value b
            Cell.Kind.Dff
            [| Netlist.Builder.fresh_net b |]
        in
        ignore new_id;
        (* placeholder input is an undriven fresh net; rewired in pass 2 *)
        dff_ids := (id, new_id) :: !dff_ids;
        Hashtbl.replace net_map c.Netlist.output out
      end)
    (Netlist.dffs nl);
  let new_net_of orig =
    match resolve orig with
    | Const v -> tie v
    | Same canon -> (
      match Hashtbl.find_opt net_map canon with
      | Some n -> n
      | None -> invalid_arg "Netlist_opt: dangling reference (internal)")
  in
  Array.iter
    (fun id ->
      let c = Netlist.cell nl id in
      if live.(id) && (match resolve c.Netlist.output with Same s when s = c.Netlist.output -> true | _ -> false)
      then begin
        let inputs = Array.map new_net_of c.Netlist.inputs in
        let out = Netlist.Builder.add_cell ~name:c.Netlist.name b c.Netlist.kind inputs in
        Hashtbl.replace net_map c.Netlist.output out
      end)
    (Netlist.topo_order nl);
  (* pass 2: rewire DFF inputs *)
  List.iter
    (fun (orig_id, new_id) ->
      let c = Netlist.cell nl orig_id in
      Netlist.Builder.rewire_input b ~cell_id:new_id ~pin:0 (new_net_of c.Netlist.inputs.(0)))
    !dff_ids;
  (* outputs *)
  List.iter
    (fun (p : Netlist.port) ->
      Netlist.Builder.add_output b p.Netlist.port_name (Array.map new_net_of p.Netlist.port_nets))
    (Netlist.outputs nl);
  let optimized = Netlist.Builder.finish b in
  let dead_removed =
    Netlist.num_cells nl - folded
    - (Netlist.num_cells optimized
      - (match (!tie0, !tie1) with
        | Some _, Some _ -> 2
        | Some _, None | None, Some _ -> 1
        | None, None -> 0))
  in
  ( optimized,
    {
      cells_before = Netlist.num_cells nl;
      cells_after = Netlist.num_cells optimized;
      folded;
      dead_removed = max 0 dead_removed;
    } )
