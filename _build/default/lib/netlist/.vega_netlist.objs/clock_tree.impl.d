lib/netlist/clock_tree.ml: List Printf
