lib/netlist/example_circuits.mli: Netlist
