lib/netlist/netlist_opt.mli: Netlist
