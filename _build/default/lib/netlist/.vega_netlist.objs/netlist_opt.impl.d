lib/netlist/netlist_opt.ml: Array Cell Hashtbl List Netlist
