lib/netlist/clock_tree.mli:
