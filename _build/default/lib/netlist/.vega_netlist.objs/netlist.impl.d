lib/netlist/netlist.ml: Array Buffer Cell Hashtbl List Printf Queue String
