lib/netlist/example_circuits.ml: Array Cell Netlist Printf
