(** Netlist optimization: the cleanup passes a synthesizer runs.

    Instrumentation transforms (failure models, shadow replicas) and
    generator output can leave constant-fed gates, buffer chains,
    degenerate muxes and unread logic behind.  {!optimize} applies, to a
    fixpoint:

    - constant folding through every combinational cell kind (e.g.
      [AND(x,0) = 0], [MUX(a,b,1) = b], [XOR(x,x) = 0]), demoting foldable
      gates to aliases or to shared tie cells;
    - buffer/alias elimination (readers are rewired to the source net);
    - dead-cell elimination: combinational cells and registers that cannot
      reach any output port are dropped.

    The result is functionally equivalent cycle-by-cycle on the same
    interface — checkable with {!Formal.check_equivalence}, which is
    exactly how the test suite validates the pass. *)

type stats = {
  cells_before : int;
  cells_after : int;
  folded : int;  (** cells demoted to constants or aliases *)
  dead_removed : int;  (** live-but-unreachable cells dropped *)
}

val optimize : Netlist.t -> Netlist.t * stats
(** Optimize.  Ports are preserved exactly; surviving cells keep their
    instance names. *)
