(** Clock-distribution trees with clock gating.

    After place-and-route, the clock reaches each flip-flop through a tree of
    clock buffers.  Clock gating switches subtrees off when idle, which
    leaves their buffers parked at a constant level and therefore under
    continuous BTI stress — the paper identifies this as a primary cause of
    nonuniform clock-network aging (Section 2.3.1).  As segments age at
    different rates, the clock-arrival times of different DFF domains drift
    apart, producing the phase shifts that cause hold violations.

    Each tree segment records its buffer count and the signal probability its
    buffers exhibit under the representative workload (0.5 for a free-running
    clock; near 0 or 1 for mostly-gated segments).  {!arrival_ps} folds a
    per-buffer delay function — fresh or aging-aware — over the root-to-leaf
    path of a clock domain. *)

type node =
  | Leaf of { domain : int; leaf_name : string; buffers : int; activity_sp : float }
  | Branch of { branch_name : string; buffers : int; activity_sp : float; children : node list }

type t

val create : string -> node -> t
(** Validate (unique, non-negative domain ids; buffer counts >= 0; SPs in
    [0, 1]) and freeze.  @raise Invalid_argument on violation. *)

val tree_name : t -> string
val root : t -> node
val domains : t -> int list
(** All leaf domain ids, ascending. *)

val segments : t -> (string * int * float) list
(** Every segment's (name, buffer count, activity SP), preorder. *)

val arrival_ps : t -> buffer_delay:(sp:float -> float) -> int -> float
(** [arrival_ps t ~buffer_delay domain] is the clock arrival time at the
    given domain's flip-flops: the sum over the root-to-leaf path of
    [buffers * buffer_delay ~sp:segment_sp].
    @raise Invalid_argument if the domain does not exist. *)

val skew_ps : t -> buffer_delay:(sp:float -> float) -> src:int -> dst:int -> float
(** Arrival-time difference [dst - src] between two domains. *)

val single_domain : t
(** The trivial tree every un-gated design uses: one domain (id 0) fed by a
    short free-running buffer chain. *)

val two_domain_gated : ?leaf_buffers:int -> sp_gated:float -> unit -> t
(** A balanced tree with an always-on domain 0 and a clock-gated domain 1
    whose segment buffers idle with the given signal probability
    ([leaf_buffers] per segment, default 20) — the configuration used to
    reproduce the paper's hold-violation scenario: fresh arrivals are
    identical, but nonuniform buffer aging skews the domains apart. *)
