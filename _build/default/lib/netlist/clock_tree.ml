type node =
  | Leaf of { domain : int; leaf_name : string; buffers : int; activity_sp : float }
  | Branch of { branch_name : string; buffers : int; activity_sp : float; children : node list }

type t = { tree_name : string; root : node; domains : int list }

let rec collect_leaves acc = function
  | Leaf l -> l.domain :: acc
  | Branch b -> List.fold_left collect_leaves acc b.children

let rec validate = function
  | Leaf l ->
    if l.domain < 0 then invalid_arg "Clock_tree: negative domain id";
    if l.buffers < 0 then invalid_arg "Clock_tree: negative buffer count";
    if l.activity_sp < 0.0 || l.activity_sp > 1.0 then
      invalid_arg "Clock_tree: activity SP outside [0, 1]"
  | Branch b ->
    if b.buffers < 0 then invalid_arg "Clock_tree: negative buffer count";
    if b.activity_sp < 0.0 || b.activity_sp > 1.0 then
      invalid_arg "Clock_tree: activity SP outside [0, 1]";
    if b.children = [] then invalid_arg "Clock_tree: branch without children";
    List.iter validate b.children

let create tree_name root =
  validate root;
  let domains = collect_leaves [] root |> List.sort_uniq compare in
  let count = List.length (collect_leaves [] root) in
  if count <> List.length domains then invalid_arg "Clock_tree: duplicate domain id";
  { tree_name; root; domains }

let tree_name t = t.tree_name
let root t = t.root
let domains t = t.domains

let segments t =
  let rec go acc = function
    | Leaf l -> (l.leaf_name, l.buffers, l.activity_sp) :: acc
    | Branch b -> List.fold_left go ((b.branch_name, b.buffers, b.activity_sp) :: acc) b.children
  in
  List.rev (go [] t.root)

let arrival_ps t ~buffer_delay domain =
  let rec find acc = function
    | Leaf l ->
      if l.domain = domain then
        Some (acc +. (float_of_int l.buffers *. buffer_delay ~sp:l.activity_sp))
      else None
    | Branch b ->
      let acc = acc +. (float_of_int b.buffers *. buffer_delay ~sp:b.activity_sp) in
      List.find_map (find acc) b.children
  in
  match find 0.0 t.root with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Clock_tree %s: no domain %d" t.tree_name domain)

let skew_ps t ~buffer_delay ~src ~dst =
  arrival_ps t ~buffer_delay dst -. arrival_ps t ~buffer_delay src

let single_domain =
  create "single"
    (Branch
       {
         branch_name = "root";
         buffers = 2;
         activity_sp = 0.5;
         children = [ Leaf { domain = 0; leaf_name = "d0"; buffers = 2; activity_sp = 0.5 } ];
       })

let two_domain_gated ?(leaf_buffers = 20) ~sp_gated () =
  create "gated"
    (Branch
       {
         branch_name = "root";
         buffers = 2;
         activity_sp = 0.5;
         children =
           [
             Leaf
               { domain = 0; leaf_name = "always_on"; buffers = leaf_buffers; activity_sp = 0.5 };
             Leaf
               { domain = 1; leaf_name = "gated"; buffers = leaf_buffers; activity_sp = sp_gated };
           ];
       })
