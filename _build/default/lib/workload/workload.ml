type benchmark = {
  name : string;
  description : string;
  program : Minic.program;
  float_heavy : bool;
}

let checksum_address = 32

(* Every kernel's program has the "out" checksum global declared first so
   that it lands at the fixed checksum address. *)
let mk name ?(float_heavy = false) description ?(globals = []) ?(funcs = []) body =
  {
    name;
    description;
    float_heavy;
    program =
      {
        Minic.globals = Minic.Gint ("out", 0) :: globals;
        funcs = { Minic.fname = "main"; params = []; ret = None; body } :: funcs;
      };
  }

open Minic

(* -------- crc: CRC-16-CCITT over a small message -------- *)

let crc =
  let data = List.init 32 (fun k -> Stdlib.((k * 7) + (k * k mod 13)) land 0xff) in
  mk "crc" "CRC-16-CCITT bitwise checksum over a 32-byte message"
    ~globals:[ Gint_array ("data", data) ]
    [
      Decl (Tint, "crc", i 0xFFFF);
      For
        ( Decl (Tint, "k", i 0),
          v "k" < i 32,
          Assign ("k", v "k" + i 1),
          [
            Assign ("crc", Binop (Bxor, v "crc", Binop (Bshl, idx "data" (v "k"), i 8)));
            For
              ( Decl (Tint, "b", i 0),
                v "b" < i 8,
                Assign ("b", v "b" + i 1),
                [
                  If
                    ( Binop (Band, v "crc", i 0x8000) != i 0,
                      [
                        Assign
                          ( "crc",
                            Binop
                              (Band, Binop (Bxor, Binop (Bshl, v "crc", i 1), i 0x1021), i 0xFFFF)
                          );
                      ],
                      [ Assign ("crc", Binop (Band, Binop (Bshl, v "crc", i 1), i 0xFFFF)) ] );
                ] );
          ] );
      Assign ("out", v "crc");
    ]

(* -------- matmult: 5x5 integer matrix multiply -------- *)

let matmult =
  let a = List.init 25 (fun k -> Stdlib.((k mod 7) + 1)) in
  let b = List.init 25 (fun k -> Stdlib.((k mod 5) + 2)) in
  mk "matmult" "5x5 integer matrix multiply with software multiplier"
    ~globals:[ Gint_array ("ma", a); Gint_array ("mb", b); Gint_array ("mc", List.init 25 (fun _ -> 0)) ]
    [
      For
        ( Decl (Tint, "r", i 0),
          v "r" < i 5,
          Assign ("r", v "r" + i 1),
          [
            For
              ( Decl (Tint, "c", i 0),
                v "c" < i 5,
                Assign ("c", v "c" + i 1),
                [
                  Decl (Tint, "s", i 0);
                  For
                    ( Decl (Tint, "k", i 0),
                      v "k" < i 5,
                      Assign ("k", v "k" + i 1),
                      [
                        Assign
                          ( "s",
                            v "s"
                            + (idx "ma" ((v "r" * i 5) + v "k") * idx "mb" ((v "k" * i 5) + v "c"))
                          );
                      ] );
                  Store ("mc", (v "r" * i 5) + v "c", v "s");
                ] );
          ] );
      Decl (Tint, "sum", i 0);
      For
        ( Decl (Tint, "k", i 0),
          v "k" < i 25,
          Assign ("k", v "k" + i 1),
          [ Assign ("sum", v "sum" + idx "mc" (v "k")) ] );
      Assign ("out", Binop (Band, v "sum", i 0xFFFF));
    ]

(* -------- minver: 3x3 floating-point matrix inversion -------- *)

let minver =
  mk "minver" ~float_heavy:true
    "3x3 floating-point matrix inversion (Gauss-Jordan), the paper's representative workload"
    ~globals:
      [
        Gfloat_array ("a", [ 4.0; 2.0; 1.0; 2.0; 5.0; 3.0; 1.0; 3.0; 6.0 ]);
        Gfloat_array ("inv", [ 1.0; 0.0; 0.0; 0.0; 1.0; 0.0; 0.0; 0.0; 1.0 ]);
      ]
    [
      For
        ( Decl (Tint, "col", i 0),
          v "col" < i 3,
          Assign ("col", v "col" + i 1),
          [
            Decl (Tfloat, "p", idx "a" ((v "col" * i 3) + v "col"));
            For
              ( Decl (Tint, "j", i 0),
                v "j" < i 3,
                Assign ("j", v "j" + i 1),
                [
                  Store ("a", (v "col" * i 3) + v "j", idx "a" ((v "col" * i 3) + v "j") / v "p");
                  Store
                    ("inv", (v "col" * i 3) + v "j", idx "inv" ((v "col" * i 3) + v "j") / v "p");
                ] );
            For
              ( Decl (Tint, "r", i 0),
                v "r" < i 3,
                Assign ("r", v "r" + i 1),
                [
                  If
                    ( v "r" != v "col",
                      [
                        Decl (Tfloat, "factor", idx "a" ((v "r" * i 3) + v "col"));
                        For
                          ( Decl (Tint, "j", i 0),
                            v "j" < i 3,
                            Assign ("j", v "j" + i 1),
                            [
                              Store
                                ( "a",
                                  (v "r" * i 3) + v "j",
                                  idx "a" ((v "r" * i 3) + v "j")
                                  - (v "factor" * idx "a" ((v "col" * i 3) + v "j")) );
                              Store
                                ( "inv",
                                  (v "r" * i 3) + v "j",
                                  idx "inv" ((v "r" * i 3) + v "j")
                                  - (v "factor" * idx "inv" ((v "col" * i 3) + v "j")) );
                            ] );
                      ],
                      [] );
                ] );
          ] );
      Decl (Tint, "sum", i 0);
      For
        ( Decl (Tint, "k", i 0),
          v "k" < i 9,
          Assign ("k", v "k" + i 1),
          [ Assign ("sum", Binop (Bxor, v "sum", Call ("__bits", [ idx "inv" (v "k") ]))) ] );
      Assign ("out", v "sum");
    ]

(* -------- nbody: softened 4-body gravity step (no sqrt) -------- *)

let nbody =
  mk "nbody" ~float_heavy:true "four-body force accumulation with softened 1/r^2 interaction"
    ~globals:
      [
        Gfloat_array ("px", [ 0.0; 1.0; 0.5; -1.5 ]);
        Gfloat_array ("py", [ 0.0; 0.5; -1.0; 1.0 ]);
        Gfloat_array ("vx", [ 0.0; 0.0; 0.0; 0.0 ]);
        Gfloat_array ("vy", [ 0.0; 0.0; 0.0; 0.0 ]);
        Gfloat_array ("mass", [ 1.0; 0.5; 0.75; 1.25 ]);
      ]
    [
      For
        ( Decl (Tint, "step", i 0),
          v "step" < i 3,
          Assign ("step", v "step" + i 1),
          [
            For
              ( Decl (Tint, "b1", i 0),
                v "b1" < i 4,
                Assign ("b1", v "b1" + i 1),
                [
                  For
                    ( Decl (Tint, "b2", i 0),
                      v "b2" < i 4,
                      Assign ("b2", v "b2" + i 1),
                      [
                        If
                          ( v "b1" != v "b2",
                            [
                              Decl (Tfloat, "dx", idx "px" (v "b2") - idx "px" (v "b1"));
                              Decl (Tfloat, "dy", idx "py" (v "b2") - idx "py" (v "b1"));
                              Decl
                                ( Tfloat,
                                  "r2",
                                  (v "dx" * v "dx") + (v "dy" * v "dy") + f 0.125 );
                              Decl (Tfloat, "force", idx "mass" (v "b2") / v "r2");
                              Store
                                ( "vx",
                                  v "b1",
                                  idx "vx" (v "b1") + (f 0.0625 * (v "force" * v "dx")) );
                              Store
                                ( "vy",
                                  v "b1",
                                  idx "vy" (v "b1") + (f 0.0625 * (v "force" * v "dy")) );
                            ],
                            [] );
                      ] );
                ] );
            For
              ( Decl (Tint, "b", i 0),
                v "b" < i 4,
                Assign ("b", v "b" + i 1),
                [
                  Store ("px", v "b", idx "px" (v "b") + (f 0.0625 * idx "vx" (v "b")));
                  Store ("py", v "b", idx "py" (v "b") + (f 0.0625 * idx "vy" (v "b")));
                ] );
          ] );
      Decl (Tint, "sum", i 0);
      For
        ( Decl (Tint, "k", i 0),
          v "k" < i 4,
          Assign ("k", v "k" + i 1),
          [
            Assign ("sum", Binop (Bxor, v "sum", Call ("__bits", [ idx "px" (v "k") ])));
            Assign ("sum", Binop (Bxor, v "sum", Call ("__bits", [ idx "py" (v "k") ])));
          ] );
      Assign ("out", v "sum");
    ]

(* -------- primecount: trial division -------- *)

let primecount =
  mk "primecount" "count primes below 120 by trial division (software divider)"
    [
      Decl (Tint, "count", i 0);
      For
        ( Decl (Tint, "n", i 2),
          v "n" < i 120,
          Assign ("n", v "n" + i 1),
          [
            Decl (Tint, "isp", i 1);
            For
              ( Decl (Tint, "d", i 2),
                (v "d" * v "d") <= v "n",
                Assign ("d", v "d" + i 1),
                [ If ((v "n" % v "d") == i 0, [ Assign ("isp", i 0) ], []) ] );
            If (v "isp" == i 1, [ Assign ("count", v "count" + i 1) ], []);
          ] );
      Assign ("out", v "count");
    ]

(* -------- edn: vector multiply-accumulate -------- *)

let edn =
  let va = List.init 24 (fun k -> Stdlib.((k * 3 mod 17) - 8)) in
  let vb = List.init 24 (fun k -> Stdlib.((k * 5 mod 23) - 11)) in
  mk "edn" "vector dot products and a scaled accumulate (DSP-style MACs)"
    ~globals:[ Gint_array ("va", va); Gint_array ("vb", vb) ]
    [
      Decl (Tint, "dot", i 0);
      Decl (Tint, "mac", i 0);
      For
        ( Decl (Tint, "k", i 0),
          v "k" < i 24,
          Assign ("k", v "k" + i 1),
          [
            Assign ("dot", v "dot" + (idx "va" (v "k") * idx "vb" (v "k")));
            Assign
              ("mac", v "mac" + (Binop (Bshr, idx "va" (v "k") * idx "va" (v "k"), i 2)));
          ] );
      Assign ("out", Binop (Band, v "dot" + v "mac", i 0xFFFF));
    ]

(* -------- huff: bit packing and unpacking -------- *)

let huff =
  let syms = List.init 24 (fun k -> Stdlib.(k * 11 mod 16)) in
  mk "huff" "pack 4-bit symbols into words, unpack, and verify (bitstream handling)"
    ~globals:[ Gint_array ("syms", syms); Gint_array ("packed", List.init 6 (fun _ -> 0)) ]
    [
      (* pack: 4 symbols per 16-bit word *)
      For
        ( Decl (Tint, "w", i 0),
          v "w" < i 6,
          Assign ("w", v "w" + i 1),
          [
            Decl (Tint, "acc", i 0);
            For
              ( Decl (Tint, "s", i 0),
                v "s" < i 4,
                Assign ("s", v "s" + i 1),
                [
                  Assign
                    ( "acc",
                      Binop
                        ( Bor,
                          v "acc",
                          Binop
                            ( Bshl,
                              idx "syms" ((v "w" * i 4) + v "s"),
                              Binop (Bshl, v "s", i 2) ) ) );
                ] );
            Store ("packed", v "w", v "acc");
          ] );
      (* unpack and xor-verify *)
      Decl (Tint, "check", i 0);
      For
        ( Decl (Tint, "w", i 0),
          v "w" < i 6,
          Assign ("w", v "w" + i 1),
          [
            For
              ( Decl (Tint, "s", i 0),
                v "s" < i 4,
                Assign ("s", v "s" + i 1),
                [
                  Decl
                    ( Tint,
                      "sym",
                      Binop
                        (Band, Binop (Bshr, idx "packed" (v "w"), Binop (Bshl, v "s", i 2)), i 15)
                    );
                  If
                    ( v "sym" != idx "syms" ((v "w" * i 4) + v "s"),
                      [ Assign ("check", i 0xDEAD) ],
                      [ Assign ("check", v "check" + v "sym") ] );
                ] );
          ] );
      Assign ("out", v "check");
    ]

(* -------- st: mean and variance of a float series -------- *)

let st =
  let xs = List.init 16 (fun k -> 1.0 +. (0.25 *. float_of_int Stdlib.(k mod 5)) -. (0.125 *. float_of_int Stdlib.(k mod 3))) in
  mk "st" ~float_heavy:true "mean and variance of a 16-sample float series"
    ~globals:[ Gfloat_array ("xs", xs) ]
    [
      Decl (Tfloat, "sum", f 0.0);
      For
        ( Decl (Tint, "k", i 0),
          v "k" < i 16,
          Assign ("k", v "k" + i 1),
          [ Assign ("sum", v "sum" + idx "xs" (v "k")) ] );
      Decl (Tfloat, "mean", v "sum" / f 16.0);
      Decl (Tfloat, "varsum", f 0.0);
      For
        ( Decl (Tint, "k", i 0),
          v "k" < i 16,
          Assign ("k", v "k" + i 1),
          [
            Decl (Tfloat, "d", idx "xs" (v "k") - v "mean");
            Assign ("varsum", v "varsum" + (v "d" * v "d"));
          ] );
      Decl (Tfloat, "variance", v "varsum" / f 16.0);
      Assign
        ( "out",
          Binop
            ( Bxor,
              Call ("__bits", [ v "mean" ]),
              Binop (Bshl, Call ("__bits", [ v "variance" ]), i 1) ) );
    ]

(* -------- ud: integer LU-style elimination -------- *)

let ud =
  let a = [ 8; 2; 3; 1; 4; 9; 2; 1; 2; 1; 7; 3; 1; 3; 2; 6 ] in
  mk "ud" "4x4 integer Gaussian elimination (division-heavy)"
    ~globals:[ Gint_array ("u", a) ]
    [
      For
        ( Decl (Tint, "k", i 0),
          v "k" < i 4,
          Assign ("k", v "k" + i 1),
          [
            For
              ( Decl (Tint, "r", v "k" + i 1),
                v "r" < i 4,
                Assign ("r", v "r" + i 1),
                [
                  Decl (Tint, "m", idx "u" ((v "r" * i 4) + v "k") / idx "u" ((v "k" * i 4) + v "k"));
                  For
                    ( Decl (Tint, "c", i 0),
                      v "c" < i 4,
                      Assign ("c", v "c" + i 1),
                      [
                        Store
                          ( "u",
                            (v "r" * i 4) + v "c",
                            idx "u" ((v "r" * i 4) + v "c")
                            - (v "m" * idx "u" ((v "k" * i 4) + v "c")) );
                      ] );
                ] );
          ] );
      Decl (Tint, "sum", i 0);
      For
        ( Decl (Tint, "k", i 0),
          v "k" < i 16,
          Assign ("k", v "k" + i 1),
          [ Assign ("sum", v "sum" + idx "u" (v "k")) ] );
      Assign ("out", Binop (Band, v "sum", i 0xFFFF));
    ]

(* -------- fir: 8-tap integer FIR filter -------- *)

let fir =
  let signal = List.init 40 (fun k -> Stdlib.(((k * 13) mod 29) - 14)) in
  let taps = [ 1; 3; 5; 7; 7; 5; 3; 1 ] in
  mk "fir" "8-tap integer FIR filter over a 40-sample signal"
    ~globals:[ Gint_array ("signal", signal); Gint_array ("taps", taps) ]
    [
      Decl (Tint, "acc", i 0);
      For
        ( Decl (Tint, "n", i 7),
          v "n" < i 40,
          Assign ("n", v "n" + i 1),
          [
            Decl (Tint, "y", i 0);
            For
              ( Decl (Tint, "t", i 0),
                v "t" < i 8,
                Assign ("t", v "t" + i 1),
                [ Assign ("y", v "y" + (idx "taps" (v "t") * idx "signal" (v "n" - v "t"))) ] );
            Assign ("acc", Binop (Bxor, v "acc", Binop (Band, v "y", i 0xFFFF)));
          ] );
      Assign ("out", v "acc");
    ]

(* -------- nsort: insertion sort -------- *)

let nsort =
  let a = List.init 20 (fun k -> Stdlib.((k * 17) mod 23)) in
  mk "nsort" "insertion sort of 20 integers with order verification"
    ~globals:[ Gint_array ("arr", a) ]
    [
      For
        ( Decl (Tint, "k", i 1),
          v "k" < i 20,
          Assign ("k", v "k" + i 1),
          [
            Decl (Tint, "key", idx "arr" (v "k"));
            Decl (Tint, "j", v "k" - i 1);
            While
              ( Binop (Bland, v "j" >= i 0, idx "arr" (v "j") > v "key"),
                [
                  Store ("arr", v "j" + i 1, idx "arr" (v "j"));
                  Assign ("j", v "j" - i 1);
                ] );
            Store ("arr", v "j" + i 1, v "key");
          ] );
      (* weighted checksum verifies sortedness *)
      Decl (Tint, "sum", i 0);
      For
        ( Decl (Tint, "k", i 0),
          v "k" < i 20,
          Assign ("k", v "k" + i 1),
          [ Assign ("sum", v "sum" + ((v "k" + i 1) * idx "arr" (v "k"))) ] );
      Assign ("out", v "sum");
    ]

(* -------- gf256: GF(2^8) arithmetic, qrduino-style -------- *)

let gf256 =
  let data = List.init 16 (fun k -> Stdlib.((k * 37 + 11) mod 256)) in
  mk "gf256" "GF(2^8) polynomial evaluation (Reed-Solomon-style field arithmetic)"
    ~globals:[ Gint_array ("poly", data) ]
    ~funcs:
      [
        {
          Minic.fname = "gfmul";
          params = [ (Tint, "x"); (Tint, "y") ];
          ret = Some Tint;
          body =
            [
              (* carry-less multiply reduced by 0x11D *)
              Decl (Tint, "acc", i 0);
              While
                ( v "y" != i 0,
                  [
                    If
                      ( Binop (Band, v "y", i 1) != i 0,
                        [ Assign ("acc", Binop (Bxor, v "acc", v "x")) ],
                        [] );
                    Assign ("x", Binop (Bshl, v "x", i 1));
                    If
                      ( Binop (Band, v "x", i 0x100) != i 0,
                        [ Assign ("x", Binop (Bxor, v "x", i 0x11D)) ],
                        [] );
                    Assign ("y", Binop (Bshr, v "y", i 1));
                  ] );
              Return (Some (v "acc"));
            ];
        };
      ]
    [
      (* evaluate the polynomial at several field points (Horner) *)
      Decl (Tint, "check", i 0);
      For
        ( Decl (Tint, "x", i 2),
          v "x" < i 8,
          Assign ("x", v "x" + i 1),
          [
            Decl (Tint, "acc", i 0);
            For
              ( Decl (Tint, "k", i 0),
                v "k" < i 16,
                Assign ("k", v "k" + i 1),
                [
                  Assign ("acc", Call ("gfmul", [ v "acc"; v "x" ]));
                  Assign ("acc", Binop (Bxor, v "acc", idx "poly" (v "k")));
                ] );
            Assign ("check", Binop (Bxor, v "check", v "acc"));
          ] );
      Assign ("out", v "check");
    ]

(* -------- slre: a tiny pattern matcher -------- *)

let slre =
  (* text and pattern as small int codes; pattern ops: literal c,
     256 = '.', 257 = '*'-modified literal follows *)
  let text = List.map Char.code (List.init 40 (fun k ->
      Stdlib.("abacabadabacabaeabacabadabacabafabacabad".[k]))) in
  mk "slre" "backtracking pattern matcher over a 40-character text"
    ~globals:
      [
        Gint_array ("text", text);
        (* pattern: a  b?*  a  c  (encoded: 'a'  STAR 'b'  'a'  'c') *)
        Gint_array ("pat", [ 97; 257; 98; 97; 99 ]);
      ]
    ~funcs:
      [
        {
          Minic.fname = "match_here";
          params = [ (Tint, "pi"); (Tint, "ti") ];
          ret = Some Tint;
          body =
            [
              If (v "pi" >= i 5, [ Return (Some (i 1)) ], []);
              If
                ( idx "pat" (v "pi") == i 257,
                  [
                    (* starred literal: try 0..n repetitions *)
                    Decl (Tint, "c", idx "pat" (v "pi" + i 1));
                    Decl (Tint, "t", v "ti");
                    While
                      ( Binop
                          (Bland, v "t" < i 40, idx "text" (v "t") == v "c"),
                        [ Assign ("t", v "t" + i 1) ] );
                    While
                      ( v "t" >= v "ti",
                        [
                          If
                            ( Call ("match_here", [ v "pi" + i 2; v "t" ]) == i 1,
                              [ Return (Some (i 1)) ],
                              [] );
                          Assign ("t", v "t" - i 1);
                        ] );
                    Return (Some (i 0));
                  ],
                  [] );
              If
                ( Binop
                    (Bland, v "ti" < i 40, idx "text" (v "ti") == idx "pat" (v "pi")),
                  [ Return (Some (Call ("match_here", [ v "pi" + i 1; v "ti" + i 1 ]))) ],
                  [] );
              Return (Some (i 0));
            ];
        };
      ]
    [
      (* count match positions *)
      Decl (Tint, "count", i 0);
      For
        ( Decl (Tint, "s", i 0),
          v "s" < i 40,
          Assign ("s", v "s" + i 1),
          [
            If
              ( Call ("match_here", [ i 0; v "s" ]) == i 1,
                [ Assign ("count", v "count" + i 1) ],
                [] );
          ] );
      Assign ("out", v "count");
    ]

(* -------- statemate: a reactive state machine -------- *)

let statemate =
  let events = List.init 48 (fun k -> Stdlib.((k * 7 + 3) mod 5)) in
  mk "statemate" "reactive state machine driven by a 48-event stream"
    ~globals:[ Gint_array ("events", events) ]
    [
      (* states: 0 idle, 1 armed, 2 active, 3 fault; events 0..4 *)
      Decl (Tint, "state", i 0);
      Decl (Tint, "sig_", i 0);
      For
        ( Decl (Tint, "k", i 0),
          v "k" < i 48,
          Assign ("k", v "k" + i 1),
          [
            Decl (Tint, "e", idx "events" (v "k"));
            If
              ( v "state" == i 0,
                [ If (v "e" == i 1, [ Assign ("state", i 1) ], []) ],
                [
                  If
                    ( v "state" == i 1,
                      [
                        If (v "e" == i 2, [ Assign ("state", i 2) ], []);
                        If (v "e" == i 0, [ Assign ("state", i 0) ], []);
                      ],
                      [
                        If
                          ( v "state" == i 2,
                            [
                              If (v "e" == i 4, [ Assign ("state", i 3) ], []);
                              If (v "e" == i 3, [ Assign ("state", i 0) ], []);
                              Assign ("sig_", v "sig_" + i 1);
                            ],
                            [ If (v "e" == i 0, [ Assign ("state", i 0) ], []) ] );
                      ] );
                ] );
            Assign
              ("sig_", Binop (Band, v "sig_" + Binop (Bshl, v "state", i 4), i 0xFFFF));
          ] );
      Assign ("out", Binop (Bxor, v "sig_", Binop (Bshl, v "state", i 12)));
    ]

(* -------- kernels written in the C surface syntax -------- *)

let of_source name ?(float_heavy = false) description source =
  match Minic_parse.parse source with
  | Ok program -> { name; description; float_heavy; program }
  | Error e -> invalid_arg (Printf.sprintf "Workload.%s: %s" name e)

let cubic =
  of_source "cubic" "integer cube roots by binary search (multiplier-heavy)"
    {|
      int out = 0;
      int targets[8] = { 27, 125, 1000, 1331, 4913, 8000, 12167, 21952 };

      int icbrt(int n) {
        int lo = 0;
        int hi = 32;
        while (lo < hi) {
          int mid = (lo + hi + 1) >> 1;
          if (mid * mid * mid <= n) { lo = mid; } else { hi = mid - 1; }
        }
        return lo;
      }

      void main() {
        int acc = 0;
        for (int k = 0; k < 8; k = k + 1) {
          acc = acc * 31 + icbrt(targets[k]);
        }
        out = acc & 0xFFFF;
      }
    |}

let mont =
  of_source "mont" "modular exponentiation (aha-mont64's little sibling)"
    {|
      int out = 0;

      int mulmod(int a, int b, int m) {
        // products must stay below 2^15: fine for m <= 181
        return (a * b) % m;
      }

      int powmod(int base, int e, int m) {
        int r = 1;
        int b = base % m;
        while (e > 0) {
          if ((e & 1) == 1) { r = mulmod(r, b, m); }
          b = mulmod(b, b, m);
          e = e >> 1;
        }
        return r;
      }

      void main() {
        int acc = 0;
        for (int base = 2; base < 10; base = base + 1) {
          acc = (acc << 1) ^ powmod(base, 29, 113);
        }
        // Fermat check: base^112 = 1 mod 113 for base coprime to the prime
        if (powmod(7, 112, 113) != 1) { acc = 0xDEAD; }
        out = acc & 0xFFFF;
      }
    |}

let all =
  [ crc; matmult; minver; nbody; primecount; edn; huff; st; ud; fir; nsort; gf256; slre;
    statemate; cubic; mont ]

let find name = List.find (fun b -> String.equal b.name name) all
