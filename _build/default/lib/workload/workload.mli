(** Embench-like benchmark kernels, written in Mini-C.

    These are the representative workloads of the evaluation: they drive
    Signal Probability Simulation in the Aging Analysis phase (the paper
    uses embench's "minver" there) and they are the applications whose
    instrumentation overhead Fig. 9 measures.  Each kernel is
    self-checking: it computes a checksum into the global ["out"]
    (memory word {!Minic.globals_base... }32), so runs on different
    backends can be compared bit-for-bit.

    The kernels mirror embench-iot's character: CRC, integer matrix
    multiply, floating-point matrix inversion (minver), an n-body step,
    prime counting, vector MACs (edn), bit packing (huff), statistics
    (st), LU decomposition (ud), an FIR filter, insertion sort (nsort),
    GF(2^8) field arithmetic (gf256, qrduino-style), a backtracking pattern
    matcher (slre), and a reactive state machine (statemate).  Floating-point kernels exercise the FPU including the
    Newton-Raphson soft division; integer multiply/divide kernels exercise
    the shift-based runtime routines — i.e. everything runs on the two
    analyzed functional units. *)

type benchmark = {
  name : string;
  description : string;
  program : Minic.program;
  float_heavy : bool;  (** exercises the FPU datapath substantially *)
}

val all : benchmark list
(** Sixteen kernels, embench-style names; [cubic] and [mont] are written
    in the C surface syntax and parsed with {!Minic_parse}. *)

val find : string -> benchmark
(** @raise Not_found on an unknown name. *)

val minver : benchmark
(** The FP matrix-inversion kernel used as the representative workload of
    Signal Probability Simulation (paper Section 4). *)

val checksum_address : int
(** Memory word holding each kernel's self-check output ("out"). *)
