(** Area and power reporting from a profiled simulation.

    The classic signoff companion to timing: static (leakage) power is
    state-dependent, so it is weighted by each cell's signal probability;
    dynamic power follows the switching-activity model
    [P = toggle_rate * Cload * Vdd^2 * f] per cell.  Both reuse exactly the
    SP/toggle profile the aging analysis already collects, which is also
    why the paper's phase one gets these analyses "for free" from the same
    instrumented simulation. *)

type kind_row = {
  kind : Cell.Kind.t;
  count : int;
  area_um2 : float;
  leakage_nw : float;
}

type report = {
  cell_count : int;
  total_area_um2 : float;
  total_leakage_nw : float;  (** SP-weighted static power *)
  total_dynamic_nw : float;  (** activity-based switching power at the given clock *)
  clock_mhz : float;
  by_kind : kind_row list;  (** kinds that occur, in {!Cell.Kind.all} order *)
}

val analyze : Cell.Library.t -> Sim.t -> clock_mhz:float -> report
(** Analyze the simulator's netlist with its collected profile.
    @raise Invalid_argument if the simulator was not created with
    [~profile:true] or has no samples. *)

val analyze_engine :
  (module Sim_intf.S with type t = 's) -> Cell.Library.t -> 's -> clock_mhz:float -> report
(** Engine-generic {!analyze}: works over any simulator satisfying the
    shared engine signature, e.g. a {!Sim64.Lane} view, whose profile
    queries aggregate over all lanes of a parallel-pattern run. *)

val render : report -> string
