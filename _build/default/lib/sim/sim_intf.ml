(** The engine signature shared by the scalar reference simulator ({!Sim})
    and the per-lane view of the word-parallel simulator ({!Sim64.Lane}).

    Engine-generic consumers — {!Vcd.of_engine_run}, {!Power.analyze_engine} —
    take a first-class [(module S with type t = 'a)] witness, so any engine
    that can present a single-pattern, cycle-accurate view plugs in without
    functorising the whole call graph. *)

module type S = sig
  type t

  val netlist : t -> Netlist.t
  val reset : t -> unit

  val set_input : t -> string -> Bitvec.t -> unit
  (** Drive a primary input port.  Width must match the port.
      @raise Invalid_argument otherwise. *)

  val set_input_bit : t -> string -> int -> bool -> unit

  val settle : t -> unit
  (** Propagate inputs and register values through the combinational logic
      (no clock edge). *)

  val step : ?sample:bool -> t -> unit
  (** One full clock cycle: settle, sample the profile counters (unless
      [~sample:false]), clock edge, settle again. *)

  val hold_clock : t -> unit
  (** Settle and sample without a clock edge (clock-gated cycle). *)

  val cycle : t -> int
  val net : t -> Netlist.net -> bool
  val output : t -> string -> Bitvec.t

  val sp : t -> Netlist.net -> float
  (** Fraction of sampled (net, cycle) observations holding logical "1".
      @raise Invalid_argument without profiling or before any sample. *)

  val sp_of_cell : t -> string -> float

  val toggle_rate : t -> Netlist.net -> float
  (** Transitions per sampled slot of the net, in [[0, 1]]. *)

  val samples : t -> int
end
