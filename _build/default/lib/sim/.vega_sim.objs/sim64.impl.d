lib/sim/sim64.ml: Array Bitvec Bytes Cell Char List Netlist Printf Random Sys
