lib/sim/sim.mli: Bitvec Netlist
