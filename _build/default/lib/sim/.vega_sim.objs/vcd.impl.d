lib/sim/vcd.ml: Array Bitvec Buffer Char List Netlist Printf Sim String
