lib/sim/vcd.ml: Array Bitvec Buffer Char List Netlist Printf Sim Sim_intf String
