lib/sim/power.mli: Cell Sim
