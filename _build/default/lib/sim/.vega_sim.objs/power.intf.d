lib/sim/power.mli: Cell Sim Sim_intf
