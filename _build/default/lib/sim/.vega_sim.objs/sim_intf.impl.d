lib/sim/sim_intf.ml: Bitvec Netlist
