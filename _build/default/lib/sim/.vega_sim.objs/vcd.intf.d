lib/sim/vcd.mli: Bitvec Netlist Sim Sim_intf
