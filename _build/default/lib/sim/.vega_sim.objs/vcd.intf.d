lib/sim/vcd.mli: Bitvec Netlist Sim
