lib/sim/sim64.mli: Bitvec Netlist Random Sim_intf
