lib/sim/sim.ml: Array Bitvec Cell List Netlist Printf Random
