lib/sim/power.ml: Array Buffer Cell Hashtbl List Netlist Printf Sim Sim_intf
