lib/serial/json.ml: Buffer Char Float List Printf Result String
