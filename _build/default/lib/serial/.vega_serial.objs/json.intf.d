lib/serial/json.mli:
