lib/serial/serial.mli: Json Lift
