lib/serial/serial.ml: Alu Fault Fpu_format Json Lift List Printf Result
