(** Interchange format for generated test suites.

    The paper's §6.3 envisions a commercial split: the chip manufacturer
    runs Aging Analysis and Error Lifting against the netlist (which the
    operator never sees) and ships the resulting test suite; the data-center
    operator schedules and runs it.  This module is that interface: suites
    round-trip through a versioned JSON document that carries everything an
    operator-side runner needs (operations, operand bit patterns, expected
    results and flags, stall/flag-check markers, and the targeted fault for
    telemetry), but no netlist internals beyond register names. *)

val format_version : int

val suite_to_json : Lift.suite -> Json.t
val suite_of_json : Json.t -> (Lift.suite, string) result

val suite_to_string : Lift.suite -> string
val suite_of_string : string -> (Lift.suite, string) result
(** Round trip: [suite_of_string (suite_to_string s)] reproduces [s]
    exactly (the error case reports the offending field). *)
