(** A C-like surface syntax for Mini-C.

    Turns program text into a {!Minic.program}, so applications and
    workloads can be written in familiar notation instead of the OCaml
    eDSL:

    {[
      int out = 0;
      int data[8] = { 3, 1, 4, 1, 5, 9, 2, 6 };

      int sum(int n) {
        int s = 0;
        for (int k = 0; k < n; k = k + 1) { s = s + data[k]; }
        return s;
      }

      void main() { out = sum(8); }
    ]}

    Supported: [int]/[float] scalars and global arrays with initializers,
    functions, [if]/[else], [while], [for], [return], assignments and array
    stores, calls, the full expression grammar with C-like precedence
    ([||], [&&], [|], [^], [&], [==]/[!=], relational, shifts, additive,
    multiplicative, unary [-]/[!]), decimal/hex integer and float literals,
    and [//] and [/* */] comments.  [>>] is a logical shift and [%] follows
    the compiler's semantics (see {!Minic}). *)

val parse : string -> (Minic.program, string) result
(** Parse a full program.  Errors read ["line L, column C: message"]. *)

val parse_expr : string -> (Minic.expr, string) result
(** Parse a single expression (for tests and tools). *)
