let binop_symbol = function
  | Minic.Badd -> "+"
  | Minic.Bsub -> "-"
  | Minic.Bmul -> "*"
  | Minic.Bdiv -> "/"
  | Minic.Bmod -> "%"
  | Minic.Band -> "&"
  | Minic.Bor -> "|"
  | Minic.Bxor -> "^"
  | Minic.Bshl -> "<<"
  | Minic.Bshr -> ">>"
  | Minic.Blt -> "<"
  | Minic.Ble -> "<="
  | Minic.Bgt -> ">"
  | Minic.Bge -> ">="
  | Minic.Beq -> "=="
  | Minic.Bne -> "!="
  | Minic.Bland -> "&&"
  | Minic.Blor -> "||"
  | Minic.Bult -> "<"  (* no surface syntax: only the runtime library uses it *)
  | Minic.Buge -> ">="

let float_literal x =
  let s = Printf.sprintf "%.12g" x in
  if String.contains s 'e' || String.contains s 'E' then Printf.sprintf "%.20f" x
  else if String.contains s '.' then s
  else s ^ ".0"

let rec expr_to_source e =
  match e with
  | Minic.Int v -> string_of_int v
  | Minic.Float x -> float_literal x
  | Minic.Var name -> name
  | Minic.Index (name, idx) -> Printf.sprintf "%s[%s]" name (expr_to_source idx)
  | Minic.Unop (Minic.Uneg, e1) -> Printf.sprintf "(-(%s))" (expr_to_source e1)
  | Minic.Unop (Minic.Unot, e1) -> Printf.sprintf "(!(%s))" (expr_to_source e1)
  | Minic.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_source a) (binop_symbol op) (expr_to_source b)
  | Minic.Call (fname, args) ->
    Printf.sprintf "%s(%s)" fname (String.concat ", " (List.map expr_to_source args))

let typ_name = function Minic.Tint -> "int" | Minic.Tfloat -> "float"

let rec stmt_lines indent s =
  let pad = String.make indent ' ' in
  match s with
  | Minic.Decl (typ, name, init) ->
    [ Printf.sprintf "%s%s %s = %s;" pad (typ_name typ) name (expr_to_source init) ]
  | Minic.Assign (name, e) -> [ Printf.sprintf "%s%s = %s;" pad name (expr_to_source e) ]
  | Minic.Store (name, idx, e) ->
    [ Printf.sprintf "%s%s[%s] = %s;" pad name (expr_to_source idx) (expr_to_source e) ]
  | Minic.If (cond, then_b, else_b) ->
    [ Printf.sprintf "%sif (%s) {" pad (expr_to_source cond) ]
    @ List.concat_map (stmt_lines (indent + 2)) then_b
    @ (if else_b = [] then [ pad ^ "}" ]
       else
         (pad ^ "} else {") :: List.concat_map (stmt_lines (indent + 2)) else_b @ [ pad ^ "}" ])
  | Minic.While (cond, body) ->
    [ Printf.sprintf "%swhile (%s) {" pad (expr_to_source cond) ]
    @ List.concat_map (stmt_lines (indent + 2)) body
    @ [ pad ^ "}" ]
  | Minic.For (init, cond, step, body) ->
    let simple st =
      match stmt_lines 0 st with
      | [ line ] -> String.sub line 0 (String.length line - 1)  (* drop ';' *)
      | _ -> invalid_arg "Minic_pp: for header must be a simple statement"
    in
    [ Printf.sprintf "%sfor (%s; %s; %s) {" pad (simple init) (expr_to_source cond) (simple step) ]
    @ List.concat_map (stmt_lines (indent + 2)) body
    @ [ pad ^ "}" ]
  | Minic.Return None -> [ pad ^ "return;" ]
  | Minic.Return (Some e) -> [ Printf.sprintf "%sreturn %s;" pad (expr_to_source e) ]
  | Minic.Break -> [ pad ^ "break;" ]
  | Minic.Continue -> [ pad ^ "continue;" ]
  | Minic.Expr e -> [ Printf.sprintf "%s%s;" pad (expr_to_source e) ]

let global_lines g =
  match g with
  | Minic.Gint (name, v) -> [ Printf.sprintf "int %s = %d;" name v ]
  | Minic.Gfloat (name, x) -> [ Printf.sprintf "float %s = %s;" name (float_literal x) ]
  | Minic.Gint_array (name, vs) ->
    [
      Printf.sprintf "int %s[%d] = { %s };" name (List.length vs)
        (String.concat ", " (List.map string_of_int vs));
    ]
  | Minic.Gfloat_array (name, xs) ->
    [
      Printf.sprintf "float %s[%d] = { %s };" name (List.length xs)
        (String.concat ", " (List.map float_literal xs));
    ]

let func_lines (f : Minic.func) =
  let ret = match f.Minic.ret with None -> "void" | Some t -> typ_name t in
  let params =
    String.concat ", " (List.map (fun (t, n) -> typ_name t ^ " " ^ n) f.Minic.params)
  in
  (Printf.sprintf "%s %s(%s) {" ret f.Minic.fname params)
  :: List.concat_map (stmt_lines 2) f.Minic.body
  @ [ "}" ]

let to_source (p : Minic.program) =
  String.concat "\n"
    (List.concat_map global_lines p.Minic.globals
    @ [ "" ]
    @ List.concat_map (fun f -> func_lines f @ [ "" ]) p.Minic.funcs)
  ^ "\n"
