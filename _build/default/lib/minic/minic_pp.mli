(** Pretty-printing Mini-C ASTs back to the surface syntax.

    [Minic_parse.parse (to_source p)] reconstructs [p] exactly (expressions
    are emitted fully parenthesized, so no precedence information is lost;
    the parser folds negated literals, matching the printer's rendering of
    negative constants).  Useful for inspecting generated programs and for
    shipping workloads as text. *)

val expr_to_source : Minic.expr -> string
val to_source : Minic.program -> string
