(* Lexer *)

type token =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW of string  (* int float void if else while for return *)
  | PUNCT of string  (* operators and delimiters *)
  | EOF

type lexed = { tok : token; line : int; col : int }

exception Error of int * int * string

let keywords =
  [ "int"; "float"; "void"; "if"; "else"; "while"; "for"; "return"; "break"; "continue" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let pos = ref 0 in
  let line = ref 1 in
  let col = ref 1 in
  let fail msg = raise (Error (!line, !col, msg)) in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let advance () =
    (if src.[!pos] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr pos
  in
  let emit tok ~line ~col = toks := { tok; line; col } :: !toks in
  while !pos < n do
    let c = src.[!pos] in
    let tl = !line and tc = !col in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance ()
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let rec skip () =
        if !pos + 1 >= n then fail "unterminated comment"
        else if src.[!pos] = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ()
        end
        else begin
          advance ();
          skip ()
        end
      in
      skip ()
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      let word = String.sub src start (!pos - start) in
      if List.mem word keywords then emit (KW word) ~line:tl ~col:tc
      else emit (IDENT word) ~line:tl ~col:tc
    end
    else if is_digit c then begin
      let start = !pos in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        advance ();
        advance ();
        while
          !pos < n
          && (is_digit src.[!pos]
             || (src.[!pos] >= 'a' && src.[!pos] <= 'f')
             || (src.[!pos] >= 'A' && src.[!pos] <= 'F'))
        do
          advance ()
        done;
        match int_of_string_opt (String.sub src start (!pos - start)) with
        | Some v -> emit (INT_LIT v) ~line:tl ~col:tc
        | None -> fail "bad hexadecimal literal"
      end
      else begin
        while !pos < n && is_digit src.[!pos] do
          advance ()
        done;
        if !pos < n && src.[!pos] = '.' then begin
          advance ();
          while !pos < n && is_digit src.[!pos] do
            advance ()
          done;
          match float_of_string_opt (String.sub src start (!pos - start)) with
          | Some x -> emit (FLOAT_LIT x) ~line:tl ~col:tc
          | None -> fail "bad float literal"
        end
        else
          match int_of_string_opt (String.sub src start (!pos - start)) with
          | Some v -> emit (INT_LIT v) ~line:tl ~col:tc
          | None -> fail "bad integer literal"
      end
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      let op2 = [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>" ] in
      if List.mem two op2 then begin
        advance ();
        advance ();
        emit (PUNCT two) ~line:tl ~col:tc
      end
      else begin
        let one = String.make 1 c in
        if String.contains "+-*/%<>=!&|^(){}[],;" c then begin
          advance ();
          emit (PUNCT one) ~line:tl ~col:tc
        end
        else fail (Printf.sprintf "unexpected character %C" c)
      end
    end
  done;
  emit EOF ~line:!line ~col:!col;
  List.rev !toks

(* Parser *)

type state = { mutable toks : lexed list }

let current st = match st.toks with [] -> assert false | t :: _ -> t

let fail_at (t : lexed) msg = raise (Error (t.line, t.col, msg))

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let describe = function
  | INT_LIT v -> Printf.sprintf "integer %d" v
  | FLOAT_LIT x -> Printf.sprintf "float %g" x
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW s -> Printf.sprintf "keyword %S" s
  | PUNCT s -> Printf.sprintf "%S" s
  | EOF -> "end of input"

let expect_punct st p =
  let t = current st in
  match t.tok with
  | PUNCT q when String.equal p q -> advance st
  | _ -> fail_at t (Printf.sprintf "expected %S but found %s" p (describe t.tok))

let accept_punct st p =
  match (current st).tok with
  | PUNCT q when String.equal p q ->
    advance st;
    true
  | _ -> false

let expect_ident st =
  let t = current st in
  match t.tok with
  | IDENT s ->
    advance st;
    s
  | _ -> fail_at t (Printf.sprintf "expected an identifier but found %s" (describe t.tok))

(* expressions, C-like precedence climbing *)

let binop_of = function
  | "||" -> Some (Minic.Blor, 1)
  | "&&" -> Some (Minic.Bland, 2)
  | "|" -> Some (Minic.Bor, 3)
  | "^" -> Some (Minic.Bxor, 4)
  | "&" -> Some (Minic.Band, 5)
  | "==" -> Some (Minic.Beq, 6)
  | "!=" -> Some (Minic.Bne, 6)
  | "<" -> Some (Minic.Blt, 7)
  | "<=" -> Some (Minic.Ble, 7)
  | ">" -> Some (Minic.Bgt, 7)
  | ">=" -> Some (Minic.Bge, 7)
  | "<<" -> Some (Minic.Bshl, 8)
  | ">>" -> Some (Minic.Bshr, 8)
  | "+" -> Some (Minic.Badd, 9)
  | "-" -> Some (Minic.Bsub, 9)
  | "*" -> Some (Minic.Bmul, 10)
  | "/" -> Some (Minic.Bdiv, 10)
  | "%" -> Some (Minic.Bmod, 10)
  | _ -> None

let rec parse_expr_prec st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match (current st).tok with
    | PUNCT p -> (
      match binop_of p with
      | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_expr_prec st (prec + 1) in
        loop (Minic.Binop (op, lhs, rhs))
      | _ -> lhs)
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  let t = current st in
  match t.tok with
  | PUNCT "-" -> (
    advance st;
    (* fold negated literals so that -9 is the literal it looks like *)
    match (current st).tok with
    | INT_LIT v ->
      advance st;
      Minic.Int (-v)
    | FLOAT_LIT x ->
      advance st;
      Minic.Float (-.x)
    | _ -> Minic.Unop (Minic.Uneg, parse_unary st))
  | PUNCT "!" ->
    advance st;
    Minic.Unop (Minic.Unot, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  let t = current st in
  match t.tok with
  | INT_LIT v ->
    advance st;
    Minic.Int v
  | FLOAT_LIT x ->
    advance st;
    Minic.Float x
  | PUNCT "(" ->
    advance st;
    let e = parse_expr_prec st 1 in
    expect_punct st ")";
    e
  | IDENT name ->
    advance st;
    if accept_punct st "(" then begin
      let args = ref [] in
      if not (accept_punct st ")") then begin
        let rec more () =
          args := parse_expr_prec st 1 :: !args;
          if accept_punct st "," then more () else expect_punct st ")"
        in
        more ()
      end;
      Minic.Call (name, List.rev !args)
    end
    else if accept_punct st "[" then begin
      let idx = parse_expr_prec st 1 in
      expect_punct st "]";
      Minic.Index (name, idx)
    end
    else Minic.Var name
  | _ -> fail_at t (Printf.sprintf "expected an expression but found %s" (describe t.tok))

(* statements *)

let parse_type st =
  let t = current st in
  match t.tok with
  | KW "int" ->
    advance st;
    Some Minic.Tint
  | KW "float" ->
    advance st;
    Some Minic.Tfloat
  | KW "void" ->
    advance st;
    None
  | _ -> fail_at t (Printf.sprintf "expected a type but found %s" (describe t.tok))

let rec parse_stmt st =
  let t = current st in
  match t.tok with
  | KW ("int" | "float") ->
    let typ = Option.get (parse_type st) in
    let name = expect_ident st in
    expect_punct st "=";
    let init = parse_expr_prec st 1 in
    expect_punct st ";";
    Minic.Decl (typ, name, init)
  | KW "if" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr_prec st 1 in
    expect_punct st ")";
    let then_b = parse_block st in
    let else_b =
      match (current st).tok with
      | KW "else" ->
        advance st;
        (match (current st).tok with
        | KW "if" -> [ parse_stmt st ]  (* else if *)
        | _ -> parse_block st)
      | _ -> []
    in
    Minic.If (cond, then_b, else_b)
  | KW "while" ->
    advance st;
    expect_punct st "(";
    let cond = parse_expr_prec st 1 in
    expect_punct st ")";
    Minic.While (cond, parse_block st)
  | KW "for" ->
    advance st;
    expect_punct st "(";
    let init = parse_simple_stmt st in
    expect_punct st ";";
    let cond = parse_expr_prec st 1 in
    expect_punct st ";";
    let step = parse_simple_stmt st in
    expect_punct st ")";
    Minic.For (init, cond, step, parse_block st)
  | KW "break" ->
    advance st;
    expect_punct st ";";
    Minic.Break
  | KW "continue" ->
    advance st;
    expect_punct st ";";
    Minic.Continue
  | KW "return" ->
    advance st;
    if accept_punct st ";" then Minic.Return None
    else begin
      let e = parse_expr_prec st 1 in
      expect_punct st ";";
      Minic.Return (Some e)
    end
  | _ ->
    let s = parse_simple_stmt st in
    expect_punct st ";";
    s

(* assignment, array store, declaration (for for-headers), or expression *)
and parse_simple_stmt st =
  let t = current st in
  match t.tok with
  | KW ("int" | "float") ->
    let typ = Option.get (parse_type st) in
    let name = expect_ident st in
    expect_punct st "=";
    Minic.Decl (typ, name, parse_expr_prec st 1)
  | IDENT name -> (
    match (List.nth_opt st.toks 1 : lexed option) with
    | Some { tok = PUNCT "="; _ } ->
      advance st;
      advance st;
      Minic.Assign (name, parse_expr_prec st 1)
    | Some { tok = PUNCT "["; _ } -> (
      (* could be a store or an index expression; parse the subscript and
         decide on the following token *)
      advance st;
      advance st;
      let idx = parse_expr_prec st 1 in
      expect_punct st "]";
      if accept_punct st "=" then Minic.Store (name, idx, parse_expr_prec st 1)
      else Minic.Expr (Minic.Index (name, idx)))
    | _ -> Minic.Expr (parse_expr_prec st 1))
  | _ -> Minic.Expr (parse_expr_prec st 1)

and parse_block st =
  expect_punct st "{";
  let stmts = ref [] in
  while not (accept_punct st "}") do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

(* globals and functions *)

let parse_literal st typ =
  let neg = accept_punct st "-" in
  let t = current st in
  match (t.tok, typ) with
  | INT_LIT v, Minic.Tint ->
    advance st;
    `Int (if neg then -v else v)
  | INT_LIT v, Minic.Tfloat ->
    (* allow "1" as a float initializer *)
    advance st;
    `Float (if neg then -.float_of_int v else float_of_int v)
  | FLOAT_LIT x, Minic.Tfloat ->
    advance st;
    `Float (if neg then -.x else x)
  | _ -> fail_at t (Printf.sprintf "expected a %s literal but found %s"
                      (match typ with Minic.Tint -> "integer" | Minic.Tfloat -> "float")
                      (describe t.tok))

let parse_top st =
  let typ = parse_type st in
  let name = expect_ident st in
  if accept_punct st "(" then begin
    (* function *)
    let params = ref [] in
    if not (accept_punct st ")") then begin
      let rec more () =
        let pt =
          match parse_type st with
          | Some t -> t
          | None -> fail_at (current st) "void is not a parameter type"
        in
        let pn = expect_ident st in
        params := (pt, pn) :: !params;
        if accept_punct st "," then more () else expect_punct st ")"
      in
      more ()
    end;
    let body = parse_block st in
    `Func { Minic.fname = name; params = List.rev !params; ret = typ; body }
  end
  else begin
    let typ =
      match typ with
      | Some t -> t
      | None -> fail_at (current st) "void is not a variable type"
    in
    if accept_punct st "[" then begin
      let size =
        match (current st).tok with
        | INT_LIT v when v > 0 ->
          advance st;
          v
        | _ -> fail_at (current st) "expected a positive array size"
      in
      expect_punct st "]";
      let values =
        if accept_punct st "=" then begin
          expect_punct st "{";
          let vals = ref [] in
          if not (accept_punct st "}") then begin
            let rec more () =
              vals := parse_literal st typ :: !vals;
              if accept_punct st "," then
                (if not (accept_punct st "}") then more ())
              else expect_punct st "}"
            in
            more ()
          end;
          List.rev !vals
        end
        else []
      in
      expect_punct st ";";
      if List.length values > size then
        fail_at (current st) (Printf.sprintf "too many initializers for %s[%d]" name size);
      let pad = size - List.length values in
      match typ with
      | Minic.Tint ->
        let ints =
          List.map (function `Int v -> v | `Float _ -> assert false) values
          @ List.init pad (fun _ -> 0)
        in
        `Global (Minic.Gint_array (name, ints))
      | Minic.Tfloat ->
        let floats =
          List.map (function `Float x -> x | `Int _ -> assert false) values
          @ List.init pad (fun _ -> 0.0)
        in
        `Global (Minic.Gfloat_array (name, floats))
    end
    else begin
      let value =
        if accept_punct st "=" then Some (parse_literal st typ)
        else None
      in
      expect_punct st ";";
      match (typ, value) with
      | Minic.Tint, Some (`Int v) -> `Global (Minic.Gint (name, v))
      | Minic.Tint, None -> `Global (Minic.Gint (name, 0))
      | Minic.Tfloat, Some (`Float x) -> `Global (Minic.Gfloat (name, x))
      | Minic.Tfloat, None -> `Global (Minic.Gfloat (name, 0.0))
      | _ -> assert false
    end
  end

let parse src =
  match
    let st = { toks = lex src } in
    let globals = ref [] and funcs = ref [] in
    let rec go () =
      match (current st).tok with
      | EOF -> ()
      | _ ->
        (match parse_top st with
        | `Global g -> globals := g :: !globals
        | `Func f -> funcs := f :: !funcs);
        go ()
    in
    go ();
    { Minic.globals = List.rev !globals; funcs = List.rev !funcs }
  with
  | program -> Ok program
  | exception Error (line, col, msg) ->
    Result.Error (Printf.sprintf "line %d, column %d: %s" line col msg)

let parse_expr src =
  match
    let st = { toks = lex src } in
    let e = parse_expr_prec st 1 in
    (match (current st).tok with
    | EOF -> ()
    | t -> fail_at (current st) (Printf.sprintf "trailing %s" (describe t)));
    e
  with
  | e -> Ok e
  | exception Error (line, col, msg) ->
    Result.Error (Printf.sprintf "line %d, column %d: %s" line col msg)
