(** Mini-C: the compiler substrate behind Test Integration.

    The paper compiles embench with an LLVM fork and implements
    Profile-Guided Test Integration as LLVM passes over basic blocks.  This
    module is that substrate: a small C-like language (int and float
    scalars, global arrays, functions, loops, conditionals, short-circuit
    logic) compiled to the {!Isa} instruction set with explicit basic-block
    labels, so block-level execution profiles can be collected and test
    cases spliced at a chosen block.

    The target CPU has no integer multiplier/divider and no FP divide, so
    the compiler lowers [*], [/] and [%] to shift-based runtime routines and
    float division to a Newton-Raphson reciprocal — all of which are
    themselves Mini-C library functions appended on demand (and therefore
    run on the analyzed ALU/FPU, as embench's soft-float does on the
    CV32E40P).

    Programs are OCaml values (an eDSL rather than a parser); see
    {!Workload} for the embench-like kernels written in it. *)

type typ = Tint | Tfloat

type binop =
  | Badd | Bsub | Bmul | Bdiv | Bmod
  | Band | Bor | Bxor | Bshl | Bshr  (** [Bshr] is a logical shift *)
  | Blt | Ble | Bgt | Bge | Beq | Bne  (** signed comparisons *)
  | Bult | Buge  (** unsigned comparisons (used by the runtime library) *)
  | Bland | Blor  (** short-circuit *)

type unop = Uneg | Unot

type expr =
  | Int of int
  | Float of float
  | Var of string
  | Index of string * expr  (** global array element *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type stmt =
  | Decl of typ * string * expr
  | Assign of string * expr
  | Store of string * expr * expr  (** array, index, value *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
  | Return of expr option
  | Break  (** exit the innermost loop *)
  | Continue  (** jump to the innermost loop's next iteration (for loops: the step) *)
  | Expr of expr

type global =
  | Gint of string * int
  | Gfloat of string * float
  | Gint_array of string * int list
  | Gfloat_array of string * float list

type func = {
  fname : string;
  params : (typ * string) list;
  ret : typ option;
  body : stmt list;
}

type program = { globals : global list; funcs : func list }
(** Execution starts at the function named ["main"] (no arguments). *)

(** {1 Compilation} *)

type block_info = {
  bb_label : string;
  bb_func : string;
  bb_static_size : int;  (** instructions in the block *)
}

type compiled = {
  code : Isa.instr list;  (** unassembled, so passes can splice into it *)
  blocks : block_info list;
  globals_base : int;  (** first memory word used by globals *)
  fmt : Fpu_format.fmt;
}

exception Compile_error of string

val save_area_base : int
(** Memory words [save_area_base ..+16] are reserved for the register
    save/restore spills of Test Integration. *)

val counter_area_base : int
(** Memory words [counter_area_base ..+16] are reserved for integration
    counters (probabilistic test gating). *)

val compile : ?fmt:Fpu_format.fmt -> ?width:int -> ?mem_top:int -> program -> compiled
(** Typecheck and compile.  [width] (default 16) is the machine word width
    the runtime division routine iterates over; [mem_top] (default 4095)
    is the initial stack pointer.  @raise Compile_error with a diagnostic
    on type or arity errors, unknown identifiers, or exhausted
    temporaries. *)

val assemble : compiled -> Isa.program
(** Shorthand for [Isa.assemble c.code]. *)

(** {1 Conveniences for building ASTs} *)

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( % ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr
val ( == ) : expr -> expr -> expr
val ( != ) : expr -> expr -> expr
val ( && ) : expr -> expr -> expr
val ( || ) : expr -> expr -> expr
val v : string -> expr
val i : int -> expr
val f : float -> expr
val idx : string -> expr -> expr
