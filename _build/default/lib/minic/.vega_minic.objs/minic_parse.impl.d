lib/minic/minic_parse.ml: List Minic Option Printf Result String
