lib/minic/minic_pp.ml: List Minic Printf String
