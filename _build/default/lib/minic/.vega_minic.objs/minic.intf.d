lib/minic/minic.mli: Fpu_format Isa
