lib/minic/minic_pp.mli: Minic
