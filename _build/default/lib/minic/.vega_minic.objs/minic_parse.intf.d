lib/minic/minic_parse.mli: Minic
