lib/minic/minic.ml: Alu Bitvec Fpu_format Hashtbl Isa List Printf String
