module F = Fpu_format

let op_port = "op"
let a_port = "a"
let b_port = "b"
let r_port = "r"
let flags_port = "flags"
let in_valid_port = "in_valid"
let valid_port = "valid"
let latency = 2
let op_bits = 3

let golden = Softfloat.apply

(* A right shifter that also reports whether any 1-bit was shifted out
   (the sticky bit of floating-point alignment). *)
let shift_right_sticky c v ~amount =
  let n = Array.length v in
  let cur = ref v in
  let sticky = ref (Hw.tie0 c) in
  Array.iteri
    (fun i sel ->
      let sh = 1 lsl i in
      let lost =
        if sh >= n then Hw.reduce_or c !cur else Hw.reduce_or c (Array.sub !cur 0 sh)
      in
      let shifted =
        if sh >= n then Array.make n (Hw.tie0 c)
        else Array.init n (fun j -> if j + sh < n then !cur.(j + sh) else Hw.tie0 c)
      in
      sticky := Hw.mux c ~sel ~if0:!sticky ~if1:(Hw.or_ c !sticky lost);
      cur := Hw.mux_vec c ~sel ~if0:!cur ~if1:shifted)
    amount;
  (!cur, !sticky)

(* zero-extend a vector *)
let zext c v w =
  Array.init w (fun i -> if i < Array.length v then v.(i) else Hw.tie0 c)

let netlist ?(fmt = F.binary16) ?(gated_output_rank = true) () =
  let m = fmt.F.man_bits and e = fmt.F.exp_bits in
  let w = F.width fmt in
  let c = Hw.create (Printf.sprintf "fpu_e%dm%d" e m) in
  let op_in = Hw.input c op_port op_bits in
  let a_in = Hw.input c a_port w in
  let b_in = Hw.input c b_port w in
  let v_in = Hw.input c in_valid_port 1 in
  (* input rank *)
  let opq = Hw.reg_vec c ~prefix:"op_q" op_in in
  let av = Hw.reg_vec c ~prefix:"a_q" a_in in
  let bv = Hw.reg_vec c ~prefix:"b_q" b_in in
  let vq = Hw.reg c ~name:"v_q" v_in.(0) in

  let zeros n = Array.init n (fun _ -> Hw.tie0 c) in
  let widen1 bit = Array.init w (fun i -> if i = 0 then bit else Hw.tie0 c) in

  (* --- unpack --- *)
  let unpack v =
    let sign = v.(w - 1) in
    let ev = Array.sub v m e in
    let mv = Array.sub v 0 m in
    let expz = Hw.is_zero c ev in
    let expmax = Hw.reduce_and c ev in
    let manz = Hw.is_zero c mv in
    let vinf = Hw.and_ c expmax manz in
    let vnan = Hw.and_ c expmax (Hw.not_ c manz) in
    let hidden = Hw.not_ c expz in
    let sig_ = Array.append mv [| hidden |] in
    (* m+1 bits *)
    (sign, ev, mv, expz, vinf, vnan, sig_)
  in
  let sa, ea, ma, a_zero, a_inf, a_nan, sig_a = unpack av in
  let sb_raw, eb, mb, b_zero, b_inf, b_nan, sig_b = unpack bv in
  let any_nan = Hw.or_ c a_nan b_nan in

  (* op decode *)
  let is_sub =
    (* code 1 = Fsub: op2..0 = 001 *)
    Hw.and_ c opq.(0) (Hw.and_ c (Hw.not_ c opq.(1)) (Hw.not_ c opq.(2)))
  in
  let sb_eff = Hw.xor_ c sb_raw is_sub in

  (* packing helpers *)
  let pack_vec ~sign ~exp ~man = Array.concat [ man; exp; [| sign |] ] in
  let qnan_vec =
    pack_vec ~sign:(Hw.tie0 c)
      ~exp:(Array.init e (fun _ -> Hw.tie1 c))
      ~man:(Array.init m (fun i -> if i = m - 1 then Hw.tie1 c else Hw.tie0 c))
  in
  let inf_vec sign = pack_vec ~sign ~exp:(Array.init e (fun _ -> Hw.tie1 c)) ~man:(zeros m) in
  let zero_vec sign = pack_vec ~sign ~exp:(zeros e) ~man:(zeros m) in
  let flags_vec ~nv ~ofl ~uf ~nx = [| nv; ofl; uf; nx |] in
  let no_flags = flags_vec ~nv:(Hw.tie0 c) ~ofl:(Hw.tie0 c) ~uf:(Hw.tie0 c) ~nx:(Hw.tie0 c) in

  (* exponent over/underflow check on an (e+2)-bit signed value; returns
     (underflow, overflow, low e bits) *)
  let exp_check e_res =
    let neg = e_res.(e + 1) in
    let low_zero = Hw.is_zero c e_res in
    let under = Hw.or_ c neg low_zero in
    let emax_c = Hw.const_vec c ~width:(e + 2) (F.exp_max fmt) in
    let lt_max = Hw.ult c e_res emax_c in
    let over = Hw.and_ c (Hw.not_ c neg) (Hw.not_ c lt_max) in
    (under, over, Array.sub e_res 0 e)
  in

  (* ---------- add/sub datapath ---------- *)
  let adder_result, adder_flags =
    let key sig_or_man exp = Array.append sig_or_man exp in
    let ka = key ma ea and kb = key mb eb in
    let swap = Hw.ult c ka kb in
    let pick if0 if1 = Hw.mux_vec c ~sel:swap ~if0 ~if1 in
    let xsign = Hw.mux c ~sel:swap ~if0:sa ~if1:sb_eff in
    let ysign = Hw.mux c ~sel:swap ~if0:sb_eff ~if1:sa in
    let xe = pick ea eb and ye = pick eb ea in
    let xsig = pick sig_a sig_b and ysig = pick sig_b sig_a in
    let d, _ = Hw.ripple_sub c xe ye in
    (* significands with 3 guard bits *)
    let x3 = Array.append (zeros 3) xsig in
    (* m+4 *)
    let y3_pre = Array.append (zeros 3) ysig in
    let y3s, sticky = shift_right_sticky c y3_pre ~amount:d in
    let y3 =
      Array.mapi (fun i bit -> if i = 0 then Hw.or_ c bit sticky else bit) y3s
    in
    let x3e = zext c x3 (m + 5) and y3e = zext c y3 (m + 5) in
    let same = Hw.xnor_ c xsign ysign in
    let sum, _ = Hw.ripple_add c x3e y3e ~cin:(Hw.tie0 c) in
    let diff, _ = Hw.ripple_sub c x3e y3e in
    let s = Hw.mux_vec c ~sel:same ~if0:diff ~if1:sum in
    let diff_zero = Hw.and_ c (Hw.not_ c same) (Hw.is_zero c s) in
    let carry = s.(m + 4) in
    (* carry path: right shift by one with jam *)
    let s_r =
      Array.init (m + 4) (fun j -> if j = 0 then Hw.or_ c s.(1) s.(0) else s.(j + 1))
    in
    (* no-carry path: left-shift by the leading-zero count of s[m+3..0] *)
    let body = Array.sub s 0 (m + 4) in
    let lz = Hw.leading_zero_count c body in
    let s_l = Hw.shift_left c body ~amount:lz in
    let norm = Hw.mux_vec c ~sel:carry ~if0:s_l ~if1:s_r in
    (* exponent: xe + carry - (carry ? 0 : lz) *)
    let xe_ext = zext c xe (e + 2) in
    let bump, _ = Hw.ripple_add c xe_ext (zeros (e + 2)) ~cin:carry in
    let lz_gated = Hw.mux_vec c ~sel:carry ~if0:lz ~if1:(zeros (Array.length lz)) in
    let e_res, _ = Hw.ripple_sub c bump (zext c lz_gated (e + 2)) in
    let under, over, e_low = exp_check e_res in
    let man_field = Array.sub norm 3 m in
    let inexact = Hw.reduce_or c (Array.sub norm 0 3) in
    let normal = pack_vec ~sign:xsign ~exp:e_low ~man:man_field in
    (* special-case priority mux, innermost = normal case *)
    let inf_conflict = Hw.and_ c (Hw.and_ c a_inf b_inf) (Hw.xor_ c sa sb_eff) in
    let use_qnan = Hw.or_ c any_nan inf_conflict in
    let b_pass = pack_vec ~sign:sb_eff ~exp:eb ~man:mb in
    let both_zero = Hw.and_ c a_zero b_zero in
    let r0 = normal in
    let r0 = Hw.mux_vec c ~sel:over ~if0:r0 ~if1:(inf_vec xsign) in
    let r0 = Hw.mux_vec c ~sel:under ~if0:r0 ~if1:(zero_vec xsign) in
    let r0 = Hw.mux_vec c ~sel:diff_zero ~if0:r0 ~if1:(zero_vec (Hw.tie0 c)) in
    let r0 = Hw.mux_vec c ~sel:b_zero ~if0:r0 ~if1:av in
    let r0 = Hw.mux_vec c ~sel:a_zero ~if0:r0 ~if1:b_pass in
    let r0 = Hw.mux_vec c ~sel:both_zero ~if0:r0 ~if1:(zero_vec (Hw.and_ c sa sb_eff)) in
    let r0 = Hw.mux_vec c ~sel:b_inf ~if0:r0 ~if1:(inf_vec sb_eff) in
    let r0 = Hw.mux_vec c ~sel:a_inf ~if0:r0 ~if1:(inf_vec sa) in
    let r0 = Hw.mux_vec c ~sel:use_qnan ~if0:r0 ~if1:qnan_vec in
    (* flags mirror the same priority *)
    let special =
      (* any case before under/over produces clean flags *)
      List.fold_left (Hw.or_ c) use_qnan [ a_inf; b_inf; both_zero; a_zero; b_zero; diff_zero ]
    in
    let not_special = Hw.not_ c special in
    let uf = Hw.and_ c not_special under in
    let ofl = Hw.and_ c (Hw.and_ c not_special (Hw.not_ c under)) over in
    let range = Hw.or_ c uf ofl in
    let nx = Hw.or_ c range (Hw.and_ c not_special (Hw.and_ c (Hw.not_ c under) (Hw.and_ c (Hw.not_ c over) inexact))) in
    let fl = flags_vec ~nv:use_qnan ~ofl ~uf ~nx in
    (r0, fl)
  in

  (* ---------- multiply datapath ---------- *)
  let mul_result, mul_flags =
    let rsign = Hw.xor_ c sa sb_raw in
    let pw = (2 * m) + 2 in
    let p = ref (zeros pw) in
    Array.iteri
      (fun i bbit ->
        let row =
          Array.init pw (fun j ->
              if j >= i && j - i <= m then Hw.and_ c sig_a.(j - i) bbit else Hw.tie0 c)
        in
        p := fst (Hw.ripple_add c !p row ~cin:(Hw.tie0 c)))
      sig_b;
    let p = !p in
    let top = p.(pw - 1) in
    let man_hi = Array.sub p (m + 1) m in
    let man_lo = Array.sub p m m in
    let man_field = Hw.mux_vec c ~sel:top ~if0:man_lo ~if1:man_hi in
    let nx_hi = Hw.reduce_or c (Array.sub p 0 (m + 1)) in
    let nx_lo = Hw.reduce_or c (Array.sub p 0 m) in
    let inexact = Hw.mux c ~sel:top ~if0:nx_lo ~if1:nx_hi in
    let ea_ext = zext c ea (e + 2) and eb_ext = zext c eb (e + 2) in
    let esum, _ = Hw.ripple_add c ea_ext eb_ext ~cin:top in
    let bias_c = Hw.const_vec c ~width:(e + 2) (F.bias fmt) in
    let e_res, _ = Hw.ripple_sub c esum bias_c in
    let under, over, e_low = exp_check e_res in
    let normal = pack_vec ~sign:rsign ~exp:e_low ~man:man_field in
    let use_qnan =
      Hw.or_ c any_nan
        (Hw.or_ c (Hw.and_ c a_inf b_zero) (Hw.and_ c b_inf a_zero))
    in
    let any_inf = Hw.or_ c a_inf b_inf in
    let any_zero = Hw.or_ c a_zero b_zero in
    let r0 = normal in
    let r0 = Hw.mux_vec c ~sel:over ~if0:r0 ~if1:(inf_vec rsign) in
    let r0 = Hw.mux_vec c ~sel:under ~if0:r0 ~if1:(zero_vec rsign) in
    let r0 = Hw.mux_vec c ~sel:any_zero ~if0:r0 ~if1:(zero_vec rsign) in
    let r0 = Hw.mux_vec c ~sel:any_inf ~if0:r0 ~if1:(inf_vec rsign) in
    let r0 = Hw.mux_vec c ~sel:use_qnan ~if0:r0 ~if1:qnan_vec in
    let special = List.fold_left (Hw.or_ c) use_qnan [ any_inf; any_zero ] in
    let not_special = Hw.not_ c special in
    let uf = Hw.and_ c not_special under in
    let ofl = Hw.and_ c (Hw.and_ c not_special (Hw.not_ c under)) over in
    let range = Hw.or_ c uf ofl in
    let nx = Hw.or_ c range (Hw.and_ c not_special (Hw.and_ c (Hw.not_ c under) (Hw.and_ c (Hw.not_ c over) inexact))) in
    let fl = flags_vec ~nv:use_qnan ~ofl ~uf ~nx in
    (r0, fl)
  in

  (* ---------- comparisons / min / max ---------- *)
  let ( feq_vec, feq_fl, flt_vec, flt_fl, fle_vec, fle_fl, min_result, min_flags, max_result,
        max_flags ) =
    let key man exp zero =
      let raw = Array.append man exp in
      Hw.mux_vec c ~sel:zero ~if0:raw ~if1:(zeros (m + e))
    in
    let ka = key ma ea a_zero and kb = key mb eb b_zero in
    let both_zero = Hw.and_ c a_zero b_zero in
    let bits_equal = Hw.equal_vec c av bv in
    let eq_core = Hw.or_ c both_zero bits_equal in
    let feq = Hw.and_ c (Hw.not_ c any_nan) eq_core in
    let mag_lt_ab = Hw.ult c ka kb and mag_lt_ba = Hw.ult c kb ka in
    let not_bz = Hw.not_ c both_zero in
    let lt_of s1 s2 m12 m21 =
      (* s1/s2 = signs of the two operands; m12 = magnitude lt *)
      let t1 = Hw.and_ c s1 (Hw.not_ c s2) in
      let t2 = Hw.and_ c (Hw.and_ c (Hw.not_ c s1) (Hw.not_ c s2)) m12 in
      let t3 = Hw.and_ c (Hw.and_ c s1 s2) m21 in
      Hw.and_ c not_bz (Hw.or_ c t1 (Hw.or_ c t2 t3))
    in
    let lt_ab = lt_of sa sb_raw mag_lt_ab mag_lt_ba in
    let lt_ba = lt_of sb_raw sa mag_lt_ba mag_lt_ab in
    let flt = Hw.and_ c (Hw.not_ c any_nan) lt_ab in
    let fle = Hw.and_ c (Hw.not_ c any_nan) (Hw.or_ c lt_ab eq_core) in
    let nan_flag = any_nan in
    let feq_fl = no_flags in
    let flt_fl = flags_vec ~nv:nan_flag ~ofl:(Hw.tie0 c) ~uf:(Hw.tie0 c) ~nx:(Hw.tie0 c) in
    let fle_fl = flt_fl in
    (* min/max on the non-NaN path *)
    let pick_min =
      let base = Hw.mux_vec c ~sel:sa ~if0:bv ~if1:av in
      let r = Hw.mux_vec c ~sel:lt_ba ~if0:base ~if1:bv in
      Hw.mux_vec c ~sel:lt_ab ~if0:r ~if1:av
    in
    let pick_max =
      let base = Hw.mux_vec c ~sel:sa ~if0:av ~if1:bv in
      let r = Hw.mux_vec c ~sel:lt_ba ~if0:base ~if1:av in
      Hw.mux_vec c ~sel:lt_ab ~if0:r ~if1:bv
    in
    let with_nan pick =
      let both_nan = Hw.and_ c a_nan b_nan in
      let r = pick in
      let r = Hw.mux_vec c ~sel:b_nan ~if0:r ~if1:av in
      let r = Hw.mux_vec c ~sel:a_nan ~if0:r ~if1:bv in
      Hw.mux_vec c ~sel:both_nan ~if0:r ~if1:qnan_vec
    in
    ( widen1 feq, feq_fl, widen1 flt, flt_fl, widen1 fle, fle_fl, with_nan pick_min, no_flags,
      with_nan pick_max, no_flags )
  in

  (* ---------- op-selected result ---------- *)
  let result =
    Hw.mux_tree c ~sel:opq
      [
        adder_result;  (* fadd *)
        adder_result;  (* fsub: handled by sb_eff *)
        mul_result;
        min_result;
        max_result;
        feq_vec;
        flt_vec;
        fle_vec;
      ]
  in
  let flags =
    Hw.mux_tree c ~sel:opq
      [ adder_flags; adder_flags; mul_flags; min_flags; max_flags; feq_fl; flt_fl; fle_fl ]
  in
  let out_domain = if gated_output_rank then 1 else 0 in
  let r = Hw.reg_vec c ~prefix:"r_q" ~domain:out_domain result in
  let fl = Hw.reg_vec c ~prefix:"fl_q" ~domain:out_domain flags in
  let v_out = Hw.reg c ~name:"v_out" ~domain:out_domain vq in
  Hw.output c r_port r;
  Hw.output c flags_port fl;
  Hw.output c valid_port [| v_out |];
  Hw.finish c

let valid_op_assume nl =
  ignore nl;
  Formal.Const true
