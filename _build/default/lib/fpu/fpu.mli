(** The gate-level floating-point unit under analysis.

    A pipelined FPU in the mold of FPnew (the CV32E40P's FPU): registered
    operand/opcode inputs, a combinational datapath computing add/sub
    (magnitude sort, sticky alignment shifter, significand add/subtract,
    leading-zero normalization), multiply (array multiplier, exponent
    arithmetic), min/max and comparisons — all with IEEE-style special-case
    handling (NaN, infinities, signed zeros) and exception flags — and a
    registered result rank.  A valid-token pipeline accompanies the data
    (ports [in_valid] -> [valid]): this is the handshake whose aging
    failures stall the CPU in the paper's Table 6 "S" rows.

    Format semantics (flush-to-zero, round-toward-zero) are those of
    {!Softfloat}, the golden model; the two are tested for exact agreement,
    exhaustively at {!Fpu_format.tiny}. *)

val op_port : string  (** ["op"], 3 bits *)

val a_port : string
val b_port : string
val r_port : string
val flags_port : string  (** 4 bits: invalid, overflow, underflow, inexact *)

val in_valid_port : string
val valid_port : string

val latency : int
(** Cycles from inputs to result: 2. *)

val netlist : ?fmt:Fpu_format.fmt -> ?gated_output_rank:bool -> unit -> Netlist.t
(** Build the FPU netlist (default format {!Fpu_format.binary16}).
    Input-rank registers are named [op_q*]/[a_q*]/[b_q*]/[v_q]; result-rank
    registers [r_q*]/[fl_q*]/[v_out].  With [gated_output_rank] (the
    default) the result rank sits in clock domain 1 — the clock-gated
    subtree whose nonuniform aging produces the paper's FPU hold
    violations. *)

val golden : Fpu_format.fmt -> Fpu_format.op -> Bitvec.t -> Bitvec.t -> Bitvec.t * Fpu_format.flags
(** Alias for {!Softfloat.apply}. *)

val valid_op_assume : Netlist.t -> Formal.expr
(** Trivially true (all 8 opcodes are defined) but kept for symmetry with
    the ALU's input restriction; restricts nothing beyond the op width. *)
