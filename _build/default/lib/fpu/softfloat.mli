(** Golden (reference) software floating-point model.

    Implements exactly the semantics of the gate-level FPU — flush-to-zero,
    round-toward-zero with guard/round/sticky accounting for the inexact
    flag, canonical quiet NaNs — using plain integer arithmetic.  This is
    the model the instruction-set simulator uses for expected-value
    computation during Instruction Construction, and the oracle against
    which the gate-level datapath is tested (exhaustively on
    {!Fpu_format.tiny}). *)

val add : Fpu_format.fmt -> Bitvec.t -> Bitvec.t -> Bitvec.t * Fpu_format.flags
val sub : Fpu_format.fmt -> Bitvec.t -> Bitvec.t -> Bitvec.t * Fpu_format.flags
val mul : Fpu_format.fmt -> Bitvec.t -> Bitvec.t -> Bitvec.t * Fpu_format.flags
val min_f : Fpu_format.fmt -> Bitvec.t -> Bitvec.t -> Bitvec.t * Fpu_format.flags
val max_f : Fpu_format.fmt -> Bitvec.t -> Bitvec.t -> Bitvec.t * Fpu_format.flags

val eq : Fpu_format.fmt -> Bitvec.t -> Bitvec.t -> bool * Fpu_format.flags
(** Quiet comparison: NaN operands give false without raising invalid. *)

val lt : Fpu_format.fmt -> Bitvec.t -> Bitvec.t -> bool * Fpu_format.flags
(** Signaling: NaN operands give false and raise invalid. *)

val le : Fpu_format.fmt -> Bitvec.t -> Bitvec.t -> bool * Fpu_format.flags

val apply :
  Fpu_format.fmt -> Fpu_format.op -> Bitvec.t -> Bitvec.t -> Bitvec.t * Fpu_format.flags
(** Dispatch on the op code; comparison results are 0/1 in the format's
    full width (as on the FPU's result port). *)
