(** Floating-point formats and operation encodings shared by the golden
    softfloat model and the gate-level FPU.

    The FPU implements a parameterizable IEEE-754-style binary format with
    two documented simplifications that keep both the gate-level datapath
    and the formal analysis laptop-scale while preserving the alignment /
    normalization / flag structure of a real FPU (see DESIGN.md):

    - subnormals flush to zero (an encoded exponent of 0 means +/-0);
    - rounding is toward zero (truncation with guard/round/sticky bits
      driving the inexact flag).

    NaN results are the canonical quiet NaN (exponent all-ones, mantissa
    MSB set). *)

type fmt = { exp_bits : int; man_bits : int }

val binary16 : fmt
(** 1 + 5 + 10 bits: the evaluation format. *)

val tiny : fmt
(** 1 + 3 + 2 bits: small enough for exhaustive gate-vs-golden testing. *)

val create_fmt : exp_bits:int -> man_bits:int -> fmt
(** @raise Invalid_argument unless [exp_bits >= 3], [man_bits >= 2] and the
    total width fits a {!Bitvec.t}. *)

val width : fmt -> int
val bias : fmt -> int
val exp_max : fmt -> int
(** The all-ones encoded exponent (infinity/NaN marker). *)

(** {1 Packing} *)

val pack : fmt -> sign:bool -> exp:int -> man:int -> Bitvec.t
val sign_of : fmt -> Bitvec.t -> bool
val exp_of : fmt -> Bitvec.t -> int
val man_of : fmt -> Bitvec.t -> int

val qnan : fmt -> Bitvec.t
val infinity : fmt -> sign:bool -> Bitvec.t
val zero : fmt -> sign:bool -> Bitvec.t
val one : fmt -> Bitvec.t

val is_nan : fmt -> Bitvec.t -> bool
val is_inf : fmt -> Bitvec.t -> bool
val is_zero : fmt -> Bitvec.t -> bool
(** True for any encoding with exponent 0 (flush-to-zero). *)

(** {1 Conversion (for workloads and reporting)} *)

val to_float : fmt -> Bitvec.t -> float
val of_float : fmt -> float -> Bitvec.t
(** Round-toward-zero conversion with flush-to-zero; saturates to infinity
    beyond the format's range. *)

(** {1 Operations} *)

type op = Fadd | Fsub | Fmul | Fmin | Fmax | Feq | Flt | Fle

val all_ops : op list
val op_code : op -> int  (** 3-bit encoding *)

val op_of_code : int -> op option
val op_name : op -> string
val op_of_name : string -> op option

(** {1 Exception flags} *)

type flags = { invalid : bool; overflow : bool; underflow : bool; inexact : bool }

val no_flags : flags
val flags_to_int : flags -> int
(** Bit 0 invalid, 1 overflow, 2 underflow, 3 inexact — the layout of the
    FPU's [flags] port. *)

val flags_of_int : int -> flags
val flags_union : flags -> flags -> flags
val pp_flags : Format.formatter -> flags -> unit
