type fmt = { exp_bits : int; man_bits : int }

let create_fmt ~exp_bits ~man_bits =
  if exp_bits < 3 then invalid_arg "Fpu_format: need at least 3 exponent bits";
  if man_bits < 2 then invalid_arg "Fpu_format: need at least 2 mantissa bits";
  if 1 + exp_bits + man_bits > Bitvec.max_width then
    invalid_arg "Fpu_format: width exceeds Bitvec.max_width";
  { exp_bits; man_bits }

let binary16 = { exp_bits = 5; man_bits = 10 }
let tiny = { exp_bits = 3; man_bits = 2 }

let width f = 1 + f.exp_bits + f.man_bits
let bias f = (1 lsl (f.exp_bits - 1)) - 1
let exp_max f = (1 lsl f.exp_bits) - 1

let pack f ~sign ~exp ~man =
  if exp < 0 || exp > exp_max f then invalid_arg "Fpu_format.pack: exponent out of range";
  if man < 0 || man >= 1 lsl f.man_bits then invalid_arg "Fpu_format.pack: mantissa out of range";
  let v = ((if sign then 1 else 0) lsl (f.exp_bits + f.man_bits)) lor (exp lsl f.man_bits) lor man in
  Bitvec.create ~width:(width f) v

let sign_of f v = Bitvec.bit v (f.exp_bits + f.man_bits)
let exp_of f v = (Bitvec.to_int v lsr f.man_bits) land exp_max f
let man_of f v = Bitvec.to_int v land ((1 lsl f.man_bits) - 1)

let qnan f = pack f ~sign:false ~exp:(exp_max f) ~man:(1 lsl (f.man_bits - 1))
let infinity f ~sign = pack f ~sign ~exp:(exp_max f) ~man:0
let zero f ~sign = pack f ~sign ~exp:0 ~man:0
let one f = pack f ~sign:false ~exp:(bias f) ~man:0

let is_nan f v = exp_of f v = exp_max f && man_of f v <> 0
let is_inf f v = exp_of f v = exp_max f && man_of f v = 0
let is_zero f v = exp_of f v = 0

let to_float f v =
  if is_nan f v then Float.nan
  else if is_inf f v then if sign_of f v then Float.neg_infinity else Float.infinity
  else if is_zero f v then if sign_of f v then -0.0 else 0.0
  else begin
    let m = 1.0 +. (float_of_int (man_of f v) /. float_of_int (1 lsl f.man_bits)) in
    let e = exp_of f v - bias f in
    let mag = m *. (2.0 ** float_of_int e) in
    if sign_of f v then -.mag else mag
  end

let of_float f x =
  if Float.is_nan x then qnan f
  else begin
    let sign = Float.sign_bit x in
    let ax = Float.abs x in
    if ax = 0.0 then zero f ~sign
    else if ax = Float.infinity then infinity f ~sign
    else begin
      let frac, e = Float.frexp ax in
      (* frac in [0.5, 1): normalized significand is frac*2, exponent e-1 *)
      let exp = e - 1 + bias f in
      if exp >= exp_max f then infinity f ~sign
      else if exp <= 0 then zero f ~sign  (* flush to zero *)
      else begin
        let man = int_of_float (Float.of_int (1 lsl (f.man_bits + 1)) *. frac) in
        (* man has the hidden bit at position man_bits; truncate *)
        pack f ~sign ~exp ~man:(man land ((1 lsl f.man_bits) - 1))
      end
    end
  end

type op = Fadd | Fsub | Fmul | Fmin | Fmax | Feq | Flt | Fle

let all_ops = [ Fadd; Fsub; Fmul; Fmin; Fmax; Feq; Flt; Fle ]

let op_code = function
  | Fadd -> 0
  | Fsub -> 1
  | Fmul -> 2
  | Fmin -> 3
  | Fmax -> 4
  | Feq -> 5
  | Flt -> 6
  | Fle -> 7

let op_of_code code = List.find_opt (fun o -> op_code o = code) all_ops

let op_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fmin -> "fmin"
  | Fmax -> "fmax"
  | Feq -> "feq"
  | Flt -> "flt"
  | Fle -> "fle"

let op_of_name name = List.find_opt (fun o -> String.equal (op_name o) name) all_ops

type flags = { invalid : bool; overflow : bool; underflow : bool; inexact : bool }

let no_flags = { invalid = false; overflow = false; underflow = false; inexact = false }

let flags_to_int fl =
  (if fl.invalid then 1 else 0)
  lor (if fl.overflow then 2 else 0)
  lor (if fl.underflow then 4 else 0)
  lor if fl.inexact then 8 else 0

let flags_of_int v =
  {
    invalid = v land 1 <> 0;
    overflow = v land 2 <> 0;
    underflow = v land 4 <> 0;
    inexact = v land 8 <> 0;
  }

let flags_union a b =
  {
    invalid = a.invalid || b.invalid;
    overflow = a.overflow || b.overflow;
    underflow = a.underflow || b.underflow;
    inexact = a.inexact || b.inexact;
  }

let pp_flags fmt fl =
  let parts =
    List.filter_map
      (fun (b, s) -> if b then Some s else None)
      [ (fl.invalid, "NV"); (fl.overflow, "OF"); (fl.underflow, "UF"); (fl.inexact, "NX") ]
  in
  Format.pp_print_string fmt (if parts = [] then "-" else String.concat "," parts)
