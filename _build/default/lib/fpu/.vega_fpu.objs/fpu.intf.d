lib/fpu/fpu.mli: Bitvec Formal Fpu_format Netlist
