lib/fpu/softfloat.mli: Bitvec Fpu_format
