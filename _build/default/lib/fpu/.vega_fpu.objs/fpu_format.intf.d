lib/fpu/fpu_format.mli: Bitvec Format
