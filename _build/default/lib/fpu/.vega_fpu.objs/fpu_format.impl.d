lib/fpu/fpu_format.ml: Bitvec Float Format List String
