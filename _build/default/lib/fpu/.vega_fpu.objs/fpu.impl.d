lib/fpu/fpu.ml: Array Formal Fpu_format Hw List Printf Softfloat
