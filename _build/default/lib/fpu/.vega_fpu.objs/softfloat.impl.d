lib/fpu/softfloat.ml: Bitvec Fpu_format
