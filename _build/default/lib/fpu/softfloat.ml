module F = Fpu_format

let mask n = (1 lsl n) - 1

(* Unpacked view: sign, biased exponent, significand with hidden bit. *)
type unpacked = { s : bool; e : int; sig_ : int }

let unpack f v =
  let m = f.F.man_bits in
  { s = F.sign_of f v; e = F.exp_of f v; sig_ = (1 lsl m) lor F.man_of f v }

let result ?(invalid = false) ?(overflow = false) ?(underflow = false) ?(inexact = false) v =
  (v, { F.invalid; overflow; underflow; inexact })

(* Pack a result exponent/significand; handles over/underflow. *)
let pack_result f ~sign ~e_res ~man ~inexact =
  if e_res >= F.exp_max f then
    result ~overflow:true ~inexact:true (F.infinity f ~sign)
  else if e_res <= 0 then result ~underflow:true ~inexact:true (F.zero f ~sign)
  else result ~inexact (F.pack f ~sign ~exp:e_res ~man)

let add_core f a b ~negate_b =
  let m = f.F.man_bits in
  let a_nan = F.is_nan f a and b_nan = F.is_nan f b in
  let a_inf = F.is_inf f a and b_inf = F.is_inf f b in
  let a_zero = F.is_zero f a and b_zero = F.is_zero f b in
  let sa = F.sign_of f a in
  let sb = F.sign_of f b <> negate_b in
  if a_nan || b_nan then result ~invalid:true (F.qnan f)
  else if a_inf && b_inf && sa <> sb then result ~invalid:true (F.qnan f)
  else if a_inf then result (F.infinity f ~sign:sa)
  else if b_inf then result (F.infinity f ~sign:sb)
  else if a_zero && b_zero then result (F.zero f ~sign:(sa && sb))
  else if a_zero then result (F.pack f ~sign:sb ~exp:(F.exp_of f b) ~man:(F.man_of f b))
  else if b_zero then result (F.pack f ~sign:sa ~exp:(F.exp_of f a) ~man:(F.man_of f a))
  else begin
    let ua = unpack f a and ub = unpack f b in
    let ua = { ua with s = sa } and ub = { ub with s = sb } in
    let key u = (u.e lsl m) lor (u.sig_ land mask m) in
    let x, y = if key ua >= key ub then (ua, ub) else (ub, ua) in
    let d = x.e - y.e in
    let x3 = x.sig_ lsl 3 in
    let y3 =
      if d <= m + 3 then begin
        let shifted = (y.sig_ lsl 3) lsr d in
        let sticky = (y.sig_ lsl 3) land mask d <> 0 in
        shifted lor if sticky then 1 else 0
      end
      else if y.sig_ <> 0 then 1
      else 0
    in
    if x.s = y.s then begin
      let s = x3 + y3 in
      let s, e_adj =
        if s >= 1 lsl (m + 4) then (((s lsr 1) lor (s land 1)), 1) else (s, 0)
      in
      let e_res = x.e + e_adj in
      pack_result f ~sign:x.s ~e_res ~man:((s lsr 3) land mask m) ~inexact:(s land 7 <> 0)
    end
    else begin
      let s = x3 - y3 in
      if s = 0 then result (F.zero f ~sign:false)
      else begin
        (* normalize: bring the leading 1 to bit m+3 *)
        let rec lead i = if s land (1 lsl i) <> 0 then i else lead (i - 1) in
        let shift = m + 3 - lead (m + 3) in
        let s = s lsl shift in
        let e_res = x.e - shift in
        pack_result f ~sign:x.s ~e_res ~man:((s lsr 3) land mask m) ~inexact:(s land 7 <> 0)
      end
    end
  end

let add f a b = add_core f a b ~negate_b:false
let sub f a b = add_core f a b ~negate_b:true

let mul f a b =
  let m = f.F.man_bits in
  let a_nan = F.is_nan f a and b_nan = F.is_nan f b in
  let a_inf = F.is_inf f a and b_inf = F.is_inf f b in
  let a_zero = F.is_zero f a and b_zero = F.is_zero f b in
  let rsign = F.sign_of f a <> F.sign_of f b in
  if a_nan || b_nan then result ~invalid:true (F.qnan f)
  else if (a_inf && b_zero) || (b_inf && a_zero) then result ~invalid:true (F.qnan f)
  else if a_inf || b_inf then result (F.infinity f ~sign:rsign)
  else if a_zero || b_zero then result (F.zero f ~sign:rsign)
  else begin
    let ua = unpack f a and ub = unpack f b in
    let p = ua.sig_ * ub.sig_ in
    let e_base = ua.e + ub.e - F.bias f in
    if p >= 1 lsl ((2 * m) + 1) then
      pack_result f ~sign:rsign ~e_res:(e_base + 1)
        ~man:((p lsr (m + 1)) land mask m)
        ~inexact:(p land mask (m + 1) <> 0)
    else
      pack_result f ~sign:rsign ~e_res:e_base
        ~man:((p lsr m) land mask m)
        ~inexact:(p land mask m <> 0)
  end

let eq f a b =
  if F.is_nan f a || F.is_nan f b then (false, F.no_flags)
  else if F.is_zero f a && F.is_zero f b then (true, F.no_flags)
  else (Bitvec.equal a b, F.no_flags)

let lt f a b =
  if F.is_nan f a || F.is_nan f b then
    (false, { F.no_flags with F.invalid = true })
  else begin
    let m = f.F.man_bits in
    let key v = if F.is_zero f v then 0 else (F.exp_of f v lsl m) lor F.man_of f v in
    let ka = key a and kb = key b in
    let sa = F.sign_of f a and sb = F.sign_of f b in
    let r =
      if ka = 0 && kb = 0 then false
      else if sa && not sb then true
      else if (not sa) && sb then false
      else if not sa then ka < kb
      else kb < ka
    in
    (r, F.no_flags)
  end

let le f a b =
  if F.is_nan f a || F.is_nan f b then
    (false, { F.no_flags with F.invalid = true })
  else begin
    let l, _ = lt f a b and e, _ = eq f a b in
    (l || e, F.no_flags)
  end

let minmax f a b ~want_min =
  let a_nan = F.is_nan f a and b_nan = F.is_nan f b in
  if a_nan && b_nan then result (F.qnan f)
  else if a_nan then result b
  else if b_nan then result a
  else begin
    let lab, _ = lt f a b and lba, _ = lt f b a in
    let sa = F.sign_of f a in
    let v =
      if lab then if want_min then a else b
      else if lba then if want_min then b else a
      else if
        (* equal (including -0/+0): the negative-signed one is the min *)
        want_min
      then if sa then a else b
      else if sa then b else a
    in
    result v
  end

let min_f f a b = minmax f a b ~want_min:true
let max_f f a b = minmax f a b ~want_min:false

let apply f op a b =
  let w = F.width f in
  let of_bool (r, fl) = ((if r then Bitvec.one w else Bitvec.zero w), fl) in
  match op with
  | F.Fadd -> add f a b
  | F.Fsub -> sub f a b
  | F.Fmul -> mul f a b
  | F.Fmin -> min_f f a b
  | F.Fmax -> max_f f a b
  | F.Feq -> of_bool (eq f a b)
  | F.Flt -> of_bool (lt f a b)
  | F.Fle -> of_bool (le f a b)
