type module_kind = Alu_module of { width : int } | Fpu_module of { fmt : Fpu_format.fmt }
type target = { kind : module_kind; netlist : Netlist.t }

let alu_target ?(width = 16) () = { kind = Alu_module { width }; netlist = Alu.netlist ~width () }

let fpu_target ?(fmt = Fpu_format.binary16) () =
  { kind = Fpu_module { fmt }; netlist = Fpu.netlist ~fmt () }

let target_of_netlist kind netlist = { kind; netlist }

type alu_step = { a_op : Alu.op; a_lhs : int; a_rhs : int; a_expected : int }

type fpu_step = {
  f_op : Fpu_format.op;
  f_lhs : int;
  f_rhs : int;
  f_expected : int;
  f_flags : Fpu_format.flags;
}

type body = Alu_test of alu_step list | Fpu_test of fpu_step list

type test_case = {
  tc_id : string;
  tc_spec : Fault.spec;
  tc_body : body;
  tc_may_stall : bool;
  tc_checks_flags : bool;
}

let steps tc = match tc.tc_body with Alu_test l -> List.length l | Fpu_test l -> List.length l

type variant_outcome =
  | Constructed of test_case
  | Proved_unreachable
  | Formal_timeout
  | Conversion_failed

type classification = S | UR | FF | FC

let classification_name = function S -> "S" | UR -> "UR" | FF -> "FF" | FC -> "FC"

type pair_result = {
  start_dff : string;
  end_dff : string;
  violation : Fault.violation_kind;
  variants : (Fault.spec * variant_outcome) list;
  classification : classification;
  cases : test_case list;
}

type config = { mitigation : bool; max_conflicts : int; max_cycles : int option }

let default_config = { mitigation = false; max_conflicts = 200_000; max_cycles = None }

let assumes_for target nl =
  match target.kind with
  | Alu_module _ -> [ Alu.valid_op_assume nl ]
  | Fpu_module _ -> [ Formal.Input (Fpu.in_valid_port, 0) ]

(* Which output-port bits diverge between original and shadow during the
   trace, and at which cycles. *)
let diff_bits (inst : Fault.instrumented) trace =
  let nl = inst.Fault.netlist in
  let sim = Sim.create nl in
  let diffs = ref [] in
  Formal.Trace.replay sim trace ~on_cycle:(fun cycle ->
      List.iter
        (fun (orig, shadow) ->
          if Sim.net sim orig <> Sim.net sim shadow then
            List.iter
              (fun (port, bit) -> diffs := (port, bit, cycle) :: !diffs)
              (Netlist.output_readers nl orig))
        inst.Fault.shadow_of);
  List.rev !diffs

(* ---- per-module instruction-construction lookup tables ---- *)

let alu_steps_of_trace ~width trace =
  let n = trace.Formal.Trace.cycles in
  List.init n (fun c ->
      let opv = Formal.Trace.input_at trace Alu.op_port c in
      let a = Formal.Trace.input_at trace Alu.a_port c in
      let b = Formal.Trace.input_at trace Alu.b_port c in
      let op =
        match Alu.op_of_code (Bitvec.to_int opv) with
        | Some op -> op
        | None -> Alu.Add  (* unreachable under the valid-op assume *)
      in
      {
        a_op = op;
        a_lhs = Bitvec.to_int a;
        a_rhs = Bitvec.to_int b;
        a_expected = Bitvec.to_int (Alu.golden ~width op a b);
      })

let fpu_steps_of_trace ~fmt trace =
  let n = trace.Formal.Trace.cycles in
  List.init n (fun c ->
      let opv = Formal.Trace.input_at trace Fpu.op_port c in
      let a = Formal.Trace.input_at trace Fpu.a_port c in
      let b = Formal.Trace.input_at trace Fpu.b_port c in
      let op = Option.get (Fpu_format.op_of_code (Bitvec.to_int opv)) in
      let r, fl = Softfloat.apply fmt op a b in
      {
        f_op = op;
        f_lhs = Bitvec.to_int a;
        f_rhs = Bitvec.to_int b;
        f_expected = Bitvec.to_int r;
        f_flags = fl;
      })

let sticky_flags steps =
  List.fold_left (fun acc s -> Fpu_format.flags_union acc s.f_flags) Fpu_format.no_flags steps

let convert target spec inst trace =
  let diffs = diff_bits inst trace in
  if diffs = [] then
    (* the formal trace did not replay: should not happen (Trace.covers is
       part of the engine's contract), treat as conversion failure *)
    Conversion_failed
  else begin
    let tc_id = Fault.describe spec in
    match target.kind with
    | Alu_module { width } ->
      Constructed
        {
          tc_id;
          tc_spec = spec;
          tc_body = Alu_test (alu_steps_of_trace ~width trace);
          tc_may_stall = false;
          tc_checks_flags = false;
        }
    | Fpu_module { fmt } ->
      let steps = fpu_steps_of_trace ~fmt trace in
      let ports = List.sort_uniq compare (List.map (fun (p, _, _) -> p) diffs) in
      let only_flags = List.for_all (fun p -> String.equal p Fpu.flags_port) ports in
      let has_valid = List.mem Fpu.valid_port ports in
      let has_flags = List.mem Fpu.flags_port ports in
      if only_flags then begin
        (* sticky-contamination check: a corrupted flag bit that the test's
           own golden operations raise anyway cannot be witnessed *)
        let sticky = Fpu_format.flags_to_int (sticky_flags steps) in
        let contaminated =
          List.for_all
            (fun (p, bit, _) -> (not (String.equal p Fpu.flags_port)) || sticky land (1 lsl bit) <> 0)
            diffs
        in
        if contaminated then Conversion_failed
        else
          Constructed
            {
              tc_id;
              tc_spec = spec;
              tc_body = Fpu_test steps;
              tc_may_stall = false;
              tc_checks_flags = true;
            }
      end
      else
        Constructed
          {
            tc_id;
            tc_spec = spec;
            tc_body = Fpu_test steps;
            tc_may_stall = has_valid;
            tc_checks_flags = has_flags;
          }
  end

let variants_of_config config violation start_dff end_dff =
  let base constant activation =
    { Fault.start_dff; end_dff; kind = violation; constant; activation }
  in
  if config.mitigation then
    [
      base Fault.C0 Fault.Rising_edge;
      base Fault.C0 Fault.Falling_edge;
      base Fault.C1 Fault.Rising_edge;
      base Fault.C1 Fault.Falling_edge;
    ]
  else [ base Fault.C0 Fault.Any_transition; base Fault.C1 Fault.Any_transition ]

let classify variants =
  let outcomes = List.map snd variants in
  if List.exists (function Constructed _ -> true | _ -> false) outcomes then S
  else if List.for_all (function Proved_unreachable -> true | _ -> false) outcomes then UR
  else if List.exists (function Formal_timeout -> true | _ -> false) outcomes then FF
  else FC

let lift_pair ?(config = default_config) target ~start_dff ~end_dff ~violation =
  let variants = variants_of_config config violation start_dff end_dff in
  let results =
    List.map
      (fun spec ->
        let outcome =
          match Fault.instrument_shadow target.netlist spec with
          | exception Invalid_argument _ ->
            (* the fault cannot influence any output: provably harmless *)
            Proved_unreachable
          | inst ->
            let assumes = assumes_for target inst.Fault.netlist in
            (match
               Formal.check_cover ~assumes ?max_cycles:config.max_cycles
                 ~max_conflicts:config.max_conflicts inst.Fault.netlist
                 ~cover:inst.Fault.cover
             with
            | Formal.Trace_found trace -> convert target spec inst trace
            | Formal.Unreachable -> Proved_unreachable
            | Formal.Bounded_unreachable _ ->
              (* feedback-free modules always get a completeness bound; a
                 bounded result therefore only arises with an explicit
                 max_cycles override, where it is not a proof *)
              Formal_timeout
            | Formal.Timeout -> Formal_timeout)
        in
        (spec, outcome))
      variants
  in
  let cases =
    List.filter_map (function _, Constructed tc -> Some tc | _ -> None) results
  in
  {
    start_dff;
    end_dff;
    violation;
    variants = results;
    classification = classify results;
    cases;
  }

(* ---- fuzzing-based trace generation (the paper's Section 6.3
   alternative): random valid stimulus on the shadow-instrumented netlist,
   with greedy trace shrinking ---- *)

type fuzz_config = { budget_cycles : int; seed : int; fuzz_mitigation : bool }

let default_fuzz_config = { budget_cycles = 2000; seed = 0xF022; fuzz_mitigation = false }

let random_stimulus target rng nl =
  List.filter_map
    (fun (p : Netlist.port) ->
      let width = Array.length p.Netlist.port_nets in
      let v =
        match target.kind with
        | Alu_module _ when String.equal p.Netlist.port_name Alu.op_port ->
          Alu.op_code (List.nth Alu.all_ops (Random.State.int rng (List.length Alu.all_ops)))
        | Fpu_module _ when String.equal p.Netlist.port_name Fpu.in_valid_port -> 1
        | _ ->
          if width <= 30 then Random.State.int rng (1 lsl width)
          else
            (Random.State.bits rng lor (Random.State.bits rng lsl 30))
            land ((1 lsl width) - 1)
      in
      ignore nl;
      Some (p.Netlist.port_name, Bitvec.create ~width v))
    (Netlist.inputs nl)

let trace_of_history nl history =
  (* history: newest first, each a (port, value) list *)
  let cycles = List.length history in
  let chron = List.rev history in
  let ports = Netlist.inputs nl in
  {
    Formal.Trace.netlist_name = Netlist.name nl;
    cycles;
    inputs =
      List.map
        (fun (p : Netlist.port) ->
          ( p.Netlist.port_name,
            Array.of_list (List.map (fun cyc -> List.assoc p.Netlist.port_name cyc) chron) ))
        ports;
    observed = [];
  }

let drop_cycle trace k =
  {
    trace with
    Formal.Trace.cycles = trace.Formal.Trace.cycles - 1;
    inputs =
      List.map
        (fun (port, arr) ->
          ( port,
            Array.of_list
              (List.filteri (fun i _ -> i <> k) (Array.to_list arr)) ))
        trace.Formal.Trace.inputs;
  }

let shrink_trace nl cover trace =
  (* greedy one-pass delta reduction: try removing each cycle, earliest
     first, keeping the trace covering *)
  let rec pass t k =
    if t.Formal.Trace.cycles <= 1 || k >= t.Formal.Trace.cycles then t
    else begin
      let candidate = drop_cycle t k in
      if Formal.Trace.covers nl candidate cover then pass candidate k else pass t (k + 1)
    end
  in
  pass trace 0

let fuzz_variant target spec fuzz =
  match Fault.instrument_shadow target.netlist spec with
  | exception Invalid_argument _ -> Proved_unreachable
  | inst ->
    let nl = inst.Fault.netlist in
    let rng = Random.State.make [| fuzz.seed |] in
    let sim = Sim.create nl in
    let rec hunt cycle history =
      if cycle >= fuzz.budget_cycles then Formal_timeout
      else begin
        let stim = random_stimulus target rng nl in
        List.iter (fun (port, v) -> Sim.set_input sim port v) stim;
        Sim.settle sim;
        let history = stim :: history in
        if Formal.eval_expr sim inst.Fault.cover then begin
          let trace = trace_of_history nl history in
          let trace = shrink_trace nl inst.Fault.cover trace in
          convert target spec inst trace
        end
        else begin
          Sim.step sim;
          hunt (cycle + 1) history
        end
      end
    in
    hunt 0 []

let fuzz_pair ?(fuzz = default_fuzz_config) target ~start_dff ~end_dff ~violation =
  let config =
    { default_config with mitigation = fuzz.fuzz_mitigation }
  in
  let variants = variants_of_config config violation start_dff end_dff in
  let results = List.map (fun spec -> (spec, fuzz_variant target spec fuzz)) variants in
  let cases = List.filter_map (function _, Constructed tc -> Some tc | _ -> None) results in
  {
    start_dff;
    end_dff;
    violation;
    variants = results;
    classification = classify results;
    cases;
  }

let lift_violating_pairs ?config target pairs =
  (* keep the worst slack per (start, end, check) and lift each *)
  let seen = Hashtbl.create 32 in
  List.filter_map
    (fun (start, Sta.At_dff end_id, check, _slack) ->
      match start with
      | Sta.From_input _ -> None
      | Sta.From_dff start_id ->
        let key = (start_id, end_id, check) in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.replace seen key ();
          let start_dff = (Netlist.cell target.netlist start_id).Netlist.name in
          let end_dff = (Netlist.cell target.netlist end_id).Netlist.name in
          let violation =
            match check with
            | Sta.Setup -> Fault.Setup_violation
            | Sta.Hold -> Fault.Hold_violation
          in
          Some (lift_pair ?config target ~start_dff ~end_dff ~violation)
        end)
    pairs

let lift_paths ?config target paths =
  let pairs = Sta.unique_pairs paths in
  List.filter_map
    (fun ((start, Sta.At_dff end_id), (path : Sta.path)) ->
      match start with
      | Sta.From_input _ -> None
      | Sta.From_dff start_id ->
        let start_dff = (Netlist.cell target.netlist start_id).Netlist.name in
        let end_dff = (Netlist.cell target.netlist end_id).Netlist.name in
        let violation =
          match path.Sta.check with
          | Sta.Setup -> Fault.Setup_violation
          | Sta.Hold -> Fault.Hold_violation
        in
        Some (lift_pair ?config target ~start_dff ~end_dff ~violation))
    pairs

(* ---- rendering ---- *)

let case_instrs ~fail_label tc =
  match tc.tc_body with
  | Alu_test steps ->
    let n = List.length steps in
    if n > 20 then invalid_arg "Lift.case_instrs: test case too long";
    let ops =
      List.concat (List.mapi
        (fun i s ->
          [
            Isa.Li (5, s.a_lhs);
            Isa.Li (6, s.a_rhs);
            Isa.Alu (s.a_op, 8 + i, 5, 6);
          ])
        steps)
    in
    let checks =
      List.concat (List.mapi
        (fun i s -> [ Isa.Li (7, s.a_expected); Isa.Bne (8 + i, 7, fail_label) ])
        steps)
    in
    ops @ checks
  | Fpu_test steps ->
    let n = List.length steps in
    if n > 20 then invalid_arg "Lift.case_instrs: test case too long";
    let clear = if tc.tc_checks_flags then [ Isa.Csr_fflags 0 ] else [] in
    let ops =
      List.concat (List.mapi
        (fun i s ->
          [ Isa.Li (5, s.f_lhs); Isa.Li (6, s.f_rhs); Isa.Fmv_wx (0, 5); Isa.Fmv_wx (1, 6) ]
          @
          match s.f_op with
          | Fpu_format.Feq | Fpu_format.Flt | Fpu_format.Fle ->
            [ Isa.Fcmp (s.f_op, 8 + i, 0, 1) ]
          | Fpu_format.Fadd | Fpu_format.Fsub | Fpu_format.Fmul | Fpu_format.Fmin
          | Fpu_format.Fmax ->
            [ Isa.Fop (s.f_op, 2 + i, 0, 1) ])
        steps)
    in
    let checks =
      List.concat (List.mapi
        (fun i s ->
          match s.f_op with
          | Fpu_format.Feq | Fpu_format.Flt | Fpu_format.Fle ->
            [ Isa.Li (7, s.f_expected land 1); Isa.Bne (8 + i, 7, fail_label) ]
          | Fpu_format.Fadd | Fpu_format.Fsub | Fpu_format.Fmul | Fpu_format.Fmin
          | Fpu_format.Fmax ->
            [
              Isa.Fmv_xw (5, 2 + i);
              Isa.Li (7, s.f_expected);
              Isa.Bne (5, 7, fail_label);
            ])
        steps)
    in
    let flag_check =
      if tc.tc_checks_flags then begin
        match tc.tc_body with
        | Fpu_test steps ->
          [
            Isa.Csr_fflags 9;
            Isa.Li (10, Fpu_format.flags_to_int (sticky_flags steps));
            Isa.Bne (9, 10, fail_label);
          ]
        | Alu_test _ -> []
      end
      else []
    in
    clear @ ops @ checks @ flag_check

type suite = { suite_target : module_kind; suite_cases : test_case list }

let suite_of_results suite_target results =
  { suite_target; suite_cases = List.concat_map (fun r -> r.cases) results }

let reorder order cases =
  match order with
  | None -> cases
  | Some order ->
    let arr = Array.of_list cases in
    if List.length order <> Array.length arr then
      invalid_arg "Lift: order length does not match the suite";
    List.map (fun i -> arr.(i)) order

let suite_instrs ?order ?(label_prefix = "") ~fail_label suite =
  ignore label_prefix;
  List.concat_map (case_instrs ~fail_label) (reorder order suite.suite_cases)

let suite_program ?order suite =
  let fail_label = "__vega_fail" in
  Isa.assemble
    (suite_instrs ?order ~fail_label suite
    @ [ Isa.Ecall Isa.exit_ok; Isa.Label fail_label; Isa.Ecall Isa.exit_sdc ])
