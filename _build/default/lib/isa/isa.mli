(** The RV32-style instruction set of the simulated CPU.

    A compact subset sufficient for the embench-like workloads and the
    Vega-generated test cases: integer ALU register/immediate forms (backed
    by the gate-level {!Alu} opcodes), word loads/stores, branches, jumps,
    the floating-point operations of the {!Fpu}, float/int moves, the
    [fflags] CSR, and an [ecall] used for program exit and SDC reporting.

    Programs are written as instruction lists with symbolic labels and
    assembled into dense arrays by {!assemble}. *)

type reg = int  (** integer registers x0..x31; x0 reads as zero *)

type freg = int  (** floating-point registers f0..f31 *)

type label = string

type instr =
  | Li of reg * int  (** load immediate (pseudo-instruction) *)
  | Alu of Alu.op * reg * reg * reg  (** rd, rs1, rs2 *)
  | Alui of Alu.op * reg * reg * int  (** rd, rs1, immediate *)
  | Lw of reg * reg * int  (** rd = mem[rs1 + off] *)
  | Sw of reg * reg * int  (** mem[rs1 + off] = rs2 (operands: rs2, base, off) *)
  | Beq of reg * reg * label
  | Bne of reg * reg * label
  | Blt of reg * reg * label  (** signed *)
  | Bge of reg * reg * label
  | Bltu of reg * reg * label
  | Bgeu of reg * reg * label
  | Jal of reg * label  (** rd = return index; jump to label *)
  | Jalr of reg * reg  (** rd = return index; jump to address in rs *)
  | Fop of Fpu_format.op * freg * freg * freg  (** arithmetic: fd, fs1, fs2 *)
  | Fcmp of Fpu_format.op * reg * freg * freg  (** comparisons: rd, fs1, fs2 *)
  | Flw of freg * reg * int
  | Fsw of freg * reg * int  (** fs2, base, off *)
  | Fmv_wx of freg * reg  (** bit move int -> float *)
  | Fmv_xw of reg * freg
  | Csr_fflags of reg  (** read the sticky FP flags into rd and clear them *)
  | Ecall of int  (** environment call: 0 = exit ok, 1 = SDC detected *)
  | Label of label  (** assembler pseudo *)
  | Nop

val exit_ok : int
val exit_sdc : int

type program = {
  instrs : instr array;  (** labels removed *)
  label_index : (string * int) list;  (** label -> instruction index *)
  source_map : int array;  (** instruction index -> position in the input list *)
}

val assemble : instr list -> program
(** Resolve labels and validate: register indices in range, branch targets
    defined, [Fop] only used with arithmetic ops and [Fcmp] only with
    comparisons.  @raise Invalid_argument with a diagnostic otherwise. *)

val label_address : program -> label -> int
(** @raise Not_found for an unknown label. *)

val pp_instr : Format.formatter -> instr -> unit
val to_asm_text : program -> string
(** Assembly-style listing of the program. *)

val length : program -> int
