type reg = int
type freg = int
type label = string

type instr =
  | Li of reg * int
  | Alu of Alu.op * reg * reg * reg
  | Alui of Alu.op * reg * reg * int
  | Lw of reg * reg * int
  | Sw of reg * reg * int
  | Beq of reg * reg * label
  | Bne of reg * reg * label
  | Blt of reg * reg * label
  | Bge of reg * reg * label
  | Bltu of reg * reg * label
  | Bgeu of reg * reg * label
  | Jal of reg * label
  | Jalr of reg * reg
  | Fop of Fpu_format.op * freg * freg * freg
  | Fcmp of Fpu_format.op * reg * freg * freg
  | Flw of freg * reg * int
  | Fsw of freg * reg * int
  | Fmv_wx of freg * reg
  | Fmv_xw of reg * freg
  | Csr_fflags of reg
  | Ecall of int
  | Label of label
  | Nop

let exit_ok = 0
let exit_sdc = 1

type program = {
  instrs : instr array;
  label_index : (string * int) list;
  source_map : int array;
}

let is_cmp_op = function
  | Fpu_format.Feq | Fpu_format.Flt | Fpu_format.Fle -> true
  | Fpu_format.Fadd | Fpu_format.Fsub | Fpu_format.Fmul | Fpu_format.Fmin | Fpu_format.Fmax ->
    false

let validate_instr pos i =
  let err fmt = Printf.ksprintf (fun s -> invalid_arg (Printf.sprintf "Isa.assemble: instruction %d: %s" pos s)) fmt in
  let reg_ok what r = if r < 0 || r > 31 then err "%s register %d out of range" what r in
  match i with
  | Li (rd, _) -> reg_ok "dest" rd
  | Alu (_, rd, r1, r2) -> reg_ok "dest" rd; reg_ok "src1" r1; reg_ok "src2" r2
  | Alui (_, rd, r1, _) -> reg_ok "dest" rd; reg_ok "src1" r1
  | Lw (rd, base, _) -> reg_ok "dest" rd; reg_ok "base" base
  | Sw (rs, base, _) -> reg_ok "src" rs; reg_ok "base" base
  | Beq (a, b, _) | Bne (a, b, _) | Blt (a, b, _) | Bge (a, b, _) | Bltu (a, b, _)
  | Bgeu (a, b, _) ->
    reg_ok "src1" a; reg_ok "src2" b
  | Jal (rd, _) -> reg_ok "dest" rd
  | Jalr (rd, rs) -> reg_ok "dest" rd; reg_ok "src" rs
  | Fop (op, fd, f1, f2) ->
    if is_cmp_op op then err "Fop used with comparison %s (use Fcmp)" (Fpu_format.op_name op);
    reg_ok "fdest" fd; reg_ok "fsrc1" f1; reg_ok "fsrc2" f2
  | Fcmp (op, rd, f1, f2) ->
    if not (is_cmp_op op) then err "Fcmp used with arithmetic %s (use Fop)" (Fpu_format.op_name op);
    reg_ok "dest" rd; reg_ok "fsrc1" f1; reg_ok "fsrc2" f2
  | Flw (fd, base, _) -> reg_ok "fdest" fd; reg_ok "base" base
  | Fsw (fs, base, _) -> reg_ok "fsrc" fs; reg_ok "base" base
  | Fmv_wx (fd, rs) -> reg_ok "fdest" fd; reg_ok "src" rs
  | Fmv_xw (rd, fs) -> reg_ok "dest" rd; reg_ok "fsrc" fs
  | Csr_fflags rd -> reg_ok "dest" rd
  | Ecall _ | Label _ | Nop -> ()

let branch_target = function
  | Beq (_, _, l) | Bne (_, _, l) | Blt (_, _, l) | Bge (_, _, l) | Bltu (_, _, l)
  | Bgeu (_, _, l) | Jal (_, l) ->
    Some l
  | _ -> None

let assemble source =
  List.iteri validate_instr source;
  let labels = Hashtbl.create 16 in
  let count = ref 0 in
  List.iter
    (fun i ->
      match i with
      | Label l ->
        if Hashtbl.mem labels l then
          invalid_arg (Printf.sprintf "Isa.assemble: duplicate label %s" l);
        Hashtbl.replace labels l !count
      | _ -> incr count)
    source;
  let instrs = Array.make !count Nop in
  let source_map = Array.make !count 0 in
  let idx = ref 0 in
  List.iteri
    (fun pos i ->
      match i with
      | Label _ -> ()
      | _ ->
        instrs.(!idx) <- i;
        source_map.(!idx) <- pos;
        incr idx)
    source;
  Array.iter
    (fun i ->
      match branch_target i with
      | Some l when not (Hashtbl.mem labels l) ->
        invalid_arg (Printf.sprintf "Isa.assemble: undefined label %s" l)
      | _ -> ())
    instrs;
  {
    instrs;
    label_index = Hashtbl.fold (fun l i acc -> (l, i) :: acc) labels [];
    source_map;
  }

let label_address p l = List.assoc l p.label_index
let length p = Array.length p.instrs

let pp_instr fmt i =
  let p f = Format.fprintf fmt f in
  match i with
  | Li (rd, v) -> p "li x%d, %d" rd v
  | Alu (op, rd, r1, r2) -> p "%s x%d, x%d, x%d" (Alu.op_name op) rd r1 r2
  | Alui (op, rd, r1, v) -> p "%si x%d, x%d, %d" (Alu.op_name op) rd r1 v
  | Lw (rd, base, off) -> p "lw x%d, %d(x%d)" rd off base
  | Sw (rs, base, off) -> p "sw x%d, %d(x%d)" rs off base
  | Beq (a, b, l) -> p "beq x%d, x%d, %s" a b l
  | Bne (a, b, l) -> p "bne x%d, x%d, %s" a b l
  | Blt (a, b, l) -> p "blt x%d, x%d, %s" a b l
  | Bge (a, b, l) -> p "bge x%d, x%d, %s" a b l
  | Bltu (a, b, l) -> p "bltu x%d, x%d, %s" a b l
  | Bgeu (a, b, l) -> p "bgeu x%d, x%d, %s" a b l
  | Jal (rd, l) -> p "jal x%d, %s" rd l
  | Jalr (rd, rs) -> p "jalr x%d, x%d" rd rs
  | Fop (op, fd, f1, f2) -> p "%s f%d, f%d, f%d" (Fpu_format.op_name op) fd f1 f2
  | Fcmp (op, rd, f1, f2) -> p "%s x%d, f%d, f%d" (Fpu_format.op_name op) rd f1 f2
  | Flw (fd, base, off) -> p "flw f%d, %d(x%d)" fd off base
  | Fsw (fs, base, off) -> p "fsw f%d, %d(x%d)" fs off base
  | Fmv_wx (fd, rs) -> p "fmv.w.x f%d, x%d" fd rs
  | Fmv_xw (rd, fs) -> p "fmv.x.w x%d, f%d" rd fs
  | Csr_fflags rd -> p "csrrc x%d, fflags" rd
  | Ecall code -> p "ecall %d" code
  | Label l -> p "%s:" l
  | Nop -> p "nop"

let to_asm_text p =
  let buf = Buffer.create 1024 in
  let labels_at = Hashtbl.create 16 in
  List.iter (fun (l, i) -> Hashtbl.add labels_at i l) p.label_index;
  Array.iteri
    (fun i instr ->
      List.iter
        (fun l -> Buffer.add_string buf (Printf.sprintf "%s:\n" l))
        (Hashtbl.find_all labels_at i);
      Buffer.add_string buf (Format.asprintf "  %a\n" pp_instr instr))
    p.instrs;
  (* labels pointing past the last instruction *)
  List.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%s:\n" l))
    (Hashtbl.find_all labels_at (Array.length p.instrs));
  Buffer.contents buf
