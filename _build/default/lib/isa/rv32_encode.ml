type word = int

exception Encode_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Encode_error s)) fmt

let mask32 = 0xFFFFFFFF

(* ---- field packers ---- *)

let check_reg r = if r < 0 || r > 31 then err "register x%d out of range" r

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  check_reg rs2;
  check_reg rs1;
  check_reg rd;
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7)
  lor opcode

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  check_reg rs1;
  check_reg rd;
  if imm < -2048 || imm > 2047 then err "I-type immediate %d out of range" imm;
  ((imm land 0xFFF) lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor opcode

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  check_reg rs2;
  check_reg rs1;
  if imm < -2048 || imm > 2047 then err "S-type immediate %d out of range" imm;
  let imm = imm land 0xFFF in
  ((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor ((imm land 0x1F) lsl 7)
  lor opcode

let b_type ~offset ~rs2 ~rs1 ~funct3 =
  check_reg rs2;
  check_reg rs1;
  if offset < -4096 || offset > 4094 || offset land 1 <> 0 then
    err "branch offset %d out of range" offset;
  let imm = offset land 0x1FFF in
  let bit n = (imm lsr n) land 1 in
  (bit 12 lsl 31)
  lor (((imm lsr 5) land 0x3F) lsl 25)
  lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (((imm lsr 1) land 0xF) lsl 8)
  lor (bit 11 lsl 7) lor 0x63

let u_type ~imm20 ~rd ~opcode =
  check_reg rd;
  ((imm20 land 0xFFFFF) lsl 12) lor (rd lsl 7) lor opcode

let j_type ~offset ~rd =
  check_reg rd;
  if offset < -1048576 || offset > 1048574 || offset land 1 <> 0 then
    err "jump offset %d out of range" offset;
  let imm = offset land 0x1FFFFF in
  let bit n = (imm lsr n) land 1 in
  (bit 20 lsl 31)
  lor (((imm lsr 1) land 0x3FF) lsl 21)
  lor (bit 11 lsl 20)
  lor (((imm lsr 12) land 0xFF) lsl 12)
  lor (rd lsl 7) lor 0x6F

(* ---- pseudo-expansion ---- *)

let scratch = 31  (* assembler temporary, outside every register pool *)

let li_words rd imm =
  let imm = if imm land 0x80000000 <> 0 then imm lor (-1 lxor mask32) else imm in
  (* normalize to a signed 32-bit value *)
  let imm = ((imm land mask32) lxor 0x80000000) - 0x80000000 in
  if imm >= -2048 && imm <= 2047 then [ i_type ~imm ~rs1:0 ~funct3:0 ~rd ~opcode:0x13 ]
  else begin
    let lo = ((imm land 0xFFF) lxor 0x800) - 0x800 in
    let hi = (imm - lo) asr 12 in
    let lui = u_type ~imm20:hi ~rd ~opcode:0x37 in
    if lo = 0 then [ lui ] else [ lui; i_type ~imm:lo ~rs1:rd ~funct3:0 ~rd ~opcode:0x13 ]
  end

let alu_r op rd rs1 rs2 =
  let funct3, funct7 =
    match op with
    | Alu.Add -> (0, 0x00)
    | Alu.Sub -> (0, 0x20)
    | Alu.Sll -> (1, 0x00)
    | Alu.Slt -> (2, 0x00)
    | Alu.Sltu -> (3, 0x00)
    | Alu.Xor_op -> (4, 0x00)
    | Alu.Srl -> (5, 0x00)
    | Alu.Sra -> (5, 0x20)
    | Alu.Or_op -> (6, 0x00)
    | Alu.And_op -> (7, 0x00)
  in
  r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode:0x33

let alu_i op rd rs1 imm =
  match op with
  | Alu.Add -> Some (i_type ~imm ~rs1 ~funct3:0 ~rd ~opcode:0x13)
  | Alu.Sub when imm >= -2047 && imm <= 2048 ->
    Some (i_type ~imm:(-imm) ~rs1 ~funct3:0 ~rd ~opcode:0x13)
  | Alu.Slt -> Some (i_type ~imm ~rs1 ~funct3:2 ~rd ~opcode:0x13)
  | Alu.Sltu -> Some (i_type ~imm ~rs1 ~funct3:3 ~rd ~opcode:0x13)
  | Alu.Xor_op -> Some (i_type ~imm ~rs1 ~funct3:4 ~rd ~opcode:0x13)
  | Alu.Or_op -> Some (i_type ~imm ~rs1 ~funct3:6 ~rd ~opcode:0x13)
  | Alu.And_op -> Some (i_type ~imm ~rs1 ~funct3:7 ~rd ~opcode:0x13)
  | Alu.Sll when imm >= 0 && imm <= 31 ->
    Some (r_type ~funct7:0x00 ~rs2:imm ~rs1 ~funct3:1 ~rd ~opcode:0x13)
  | Alu.Srl when imm >= 0 && imm <= 31 ->
    Some (r_type ~funct7:0x00 ~rs2:imm ~rs1 ~funct3:5 ~rd ~opcode:0x13)
  | Alu.Sra when imm >= 0 && imm <= 31 ->
    Some (r_type ~funct7:0x20 ~rs2:imm ~rs1 ~funct3:5 ~rd ~opcode:0x13)
  | _ -> None

let fop_r op fd fs1 fs2 =
  match op with
  | Fpu_format.Fadd -> r_type ~funct7:0x00 ~rs2:fs2 ~rs1:fs1 ~funct3:0 ~rd:fd ~opcode:0x53
  | Fpu_format.Fsub -> r_type ~funct7:0x04 ~rs2:fs2 ~rs1:fs1 ~funct3:0 ~rd:fd ~opcode:0x53
  | Fpu_format.Fmul -> r_type ~funct7:0x08 ~rs2:fs2 ~rs1:fs1 ~funct3:0 ~rd:fd ~opcode:0x53
  | Fpu_format.Fmin -> r_type ~funct7:0x14 ~rs2:fs2 ~rs1:fs1 ~funct3:0 ~rd:fd ~opcode:0x53
  | Fpu_format.Fmax -> r_type ~funct7:0x14 ~rs2:fs2 ~rs1:fs1 ~funct3:1 ~rd:fd ~opcode:0x53
  | Fpu_format.Feq | Fpu_format.Flt | Fpu_format.Fle -> assert false

let fcmp_r op rd fs1 fs2 =
  let funct3 =
    match op with
    | Fpu_format.Feq -> 2
    | Fpu_format.Flt -> 1
    | Fpu_format.Fle -> 0
    | _ -> assert false
  in
  r_type ~funct7:0x50 ~rs2:fs2 ~rs1:fs1 ~funct3 ~rd ~opcode:0x53

(* expansion items: encoded words, or control transfers pending layout *)
type item =
  | W of word
  | Branch of int (* funct3 *) * int (* rs1 *) * int (* rs2 *) * string
  | Jump of int (* rd *) * string

(* Loads/stores: the ISS is word-addressed; bytes scale by 4. *)
let mem_access ~make ~off =
  let byte_off = off * 4 in
  if byte_off >= -2048 && byte_off <= 2047 then make byte_off None
  else
    (* base+offset via the scratch register *)
    make 0 (Some byte_off)

let expand (i : Isa.instr) : item list =
  match i with
  | Isa.Li (rd, imm) -> List.map (fun w -> W w) (li_words rd imm)
  | Isa.Alu (op, rd, r1, r2) -> [ W (alu_r op rd r1 r2) ]
  | Isa.Alui (op, rd, r1, imm) -> (
    match alu_i op rd r1 imm with
    | Some w -> [ W w ]
    | None ->
      (* immediate out of range: materialize it and use the R-form *)
      List.map (fun w -> W w) (li_words scratch imm) @ [ W (alu_r op rd r1 scratch) ])
  | Isa.Lw (rd, base, off) ->
    mem_access ~off ~make:(fun byte_off big ->
        match big with
        | None -> [ W (i_type ~imm:byte_off ~rs1:base ~funct3:2 ~rd ~opcode:0x03) ]
        | Some total ->
          List.map (fun w -> W w) (li_words scratch total)
          @ [
              W (alu_r Alu.Add scratch scratch base);
              W (i_type ~imm:0 ~rs1:scratch ~funct3:2 ~rd ~opcode:0x03);
            ])
  | Isa.Sw (rs, base, off) ->
    mem_access ~off ~make:(fun byte_off big ->
        match big with
        | None -> [ W (s_type ~imm:byte_off ~rs2:rs ~rs1:base ~funct3:2 ~opcode:0x23) ]
        | Some total ->
          List.map (fun w -> W w) (li_words scratch total)
          @ [
              W (alu_r Alu.Add scratch scratch base);
              W (s_type ~imm:0 ~rs2:rs ~rs1:scratch ~funct3:2 ~opcode:0x23);
            ])
  | Isa.Beq (a, b, l) -> [ Branch (0, a, b, l) ]
  | Isa.Bne (a, b, l) -> [ Branch (1, a, b, l) ]
  | Isa.Blt (a, b, l) -> [ Branch (4, a, b, l) ]
  | Isa.Bge (a, b, l) -> [ Branch (5, a, b, l) ]
  | Isa.Bltu (a, b, l) -> [ Branch (6, a, b, l) ]
  | Isa.Bgeu (a, b, l) -> [ Branch (7, a, b, l) ]
  | Isa.Jal (rd, l) -> [ Jump (rd, l) ]
  | Isa.Jalr (rd, rs) -> [ W (i_type ~imm:0 ~rs1:rs ~funct3:0 ~rd ~opcode:0x67) ]
  | Isa.Fop (op, fd, f1, f2) -> [ W (fop_r op fd f1 f2) ]
  | Isa.Fcmp (op, rd, f1, f2) -> [ W (fcmp_r op rd f1 f2) ]
  | Isa.Flw (fd, base, off) ->
    mem_access ~off ~make:(fun byte_off big ->
        match big with
        | None -> [ W (i_type ~imm:byte_off ~rs1:base ~funct3:2 ~rd:fd ~opcode:0x07) ]
        | Some total ->
          List.map (fun w -> W w) (li_words scratch total)
          @ [
              W (alu_r Alu.Add scratch scratch base);
              W (i_type ~imm:0 ~rs1:scratch ~funct3:2 ~rd:fd ~opcode:0x07);
            ])
  | Isa.Fsw (fs, base, off) ->
    mem_access ~off ~make:(fun byte_off big ->
        match big with
        | None -> [ W (s_type ~imm:byte_off ~rs2:fs ~rs1:base ~funct3:2 ~opcode:0x27) ]
        | Some total ->
          List.map (fun w -> W w) (li_words scratch total)
          @ [
              W (alu_r Alu.Add scratch scratch base);
              W (s_type ~imm:0 ~rs2:fs ~rs1:scratch ~funct3:2 ~opcode:0x27);
            ])
  | Isa.Fmv_wx (fd, rs) -> [ W (r_type ~funct7:0x78 ~rs2:0 ~rs1:rs ~funct3:0 ~rd:fd ~opcode:0x53) ]
  | Isa.Fmv_xw (rd, fs) -> [ W (r_type ~funct7:0x70 ~rs2:0 ~rs1:fs ~funct3:0 ~rd ~opcode:0x53) ]
  | Isa.Csr_fflags rd -> [ W (i_type ~imm:0x001 ~rs1:0 ~funct3:1 ~rd ~opcode:0x73) ]
  | Isa.Ecall code ->
    [ W (i_type ~imm:code ~rs1:0 ~funct3:0 ~rd:17 ~opcode:0x13); W 0x00000073 ]
  | Isa.Nop -> [ W (i_type ~imm:0 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:0x13) ]
  | Isa.Label _ -> []

let encode (p : Isa.program) =
  match
    let expansions = Array.map expand p.Isa.instrs in
    (* byte address of each source instruction *)
    let addrs = Array.make (Array.length expansions + 1) 0 in
    Array.iteri
      (fun i items -> addrs.(i + 1) <- addrs.(i) + (4 * List.length items))
      expansions;
    let label_addr l =
      let idx = Isa.label_address p l in
      addrs.(idx)
    in
    let words = ref [] in
    Array.iteri
      (fun i items ->
        let pc = ref addrs.(i) in
        List.iter
          (fun item ->
            let w =
              match item with
              | W w -> w
              | Branch (funct3, rs1, rs2, l) ->
                b_type ~offset:(label_addr l - !pc) ~rs2 ~rs1 ~funct3
              | Jump (rd, l) -> j_type ~offset:(label_addr l - !pc) ~rd
            in
            words := (w land mask32) :: !words;
            pc := !pc + 4)
          items)
      expansions;
    List.rev !words
  with
  | words -> Ok words
  | exception Encode_error msg -> Error msg

let encode_exn p =
  match encode p with Ok w -> w | Error e -> invalid_arg ("Rv32_encode: " ^ e)

let to_hex words =
  String.concat "\n" (List.map (Printf.sprintf "%08x") words) ^ "\n"

let disassemble_word w =
  let opcode = w land 0x7F in
  let rd = (w lsr 7) land 0x1F in
  let funct3 = (w lsr 12) land 0x7 in
  let rs1 = (w lsr 15) land 0x1F in
  let rs2 = (w lsr 20) land 0x1F in
  let funct7 = (w lsr 25) land 0x7F in
  let imm_i = ((w asr 20) land 0xFFF lxor 0x800) - 0x800 in
  match opcode with
  | 0x33 -> (
    let name =
      match (funct3, funct7) with
      | 0, 0x00 -> "add"
      | 0, 0x20 -> "sub"
      | 1, _ -> "sll"
      | 2, _ -> "slt"
      | 3, _ -> "sltu"
      | 4, _ -> "xor"
      | 5, 0x00 -> "srl"
      | 5, 0x20 -> "sra"
      | 6, _ -> "or"
      | 7, _ -> "and"
      | _ -> "?op"
    in
    Printf.sprintf "%s x%d, x%d, x%d" name rd rs1 rs2)
  | 0x13 -> (
    match funct3 with
    | 0 -> Printf.sprintf "addi x%d, x%d, %d" rd rs1 imm_i
    | 1 -> Printf.sprintf "slli x%d, x%d, %d" rd rs1 rs2
    | 5 -> Printf.sprintf "%s x%d, x%d, %d" (if funct7 = 0x20 then "srai" else "srli") rd rs1 rs2
    | 2 -> Printf.sprintf "slti x%d, x%d, %d" rd rs1 imm_i
    | 3 -> Printf.sprintf "sltiu x%d, x%d, %d" rd rs1 imm_i
    | 4 -> Printf.sprintf "xori x%d, x%d, %d" rd rs1 imm_i
    | 6 -> Printf.sprintf "ori x%d, x%d, %d" rd rs1 imm_i
    | 7 -> Printf.sprintf "andi x%d, x%d, %d" rd rs1 imm_i
    | _ -> "?imm")
  | 0x37 -> Printf.sprintf "lui x%d, 0x%x" rd ((w lsr 12) land 0xFFFFF)
  | 0x03 -> Printf.sprintf "lw x%d, %d(x%d)" rd imm_i rs1
  | 0x23 ->
    let imm = ((funct7 lsl 5) lor rd lxor 0x800) - 0x800 in
    Printf.sprintf "sw x%d, %d(x%d)" rs2 imm rs1
  | 0x63 ->
    let name =
      match funct3 with
      | 0 -> "beq"
      | 1 -> "bne"
      | 4 -> "blt"
      | 5 -> "bge"
      | 6 -> "bltu"
      | 7 -> "bgeu"
      | _ -> "?br"
    in
    Printf.sprintf "%s x%d, x%d, <offset>" name rs1 rs2
  | 0x6F -> Printf.sprintf "jal x%d, <offset>" rd
  | 0x67 -> Printf.sprintf "jalr x%d, %d(x%d)" rd imm_i rs1
  | 0x07 -> Printf.sprintf "flw f%d, %d(x%d)" rd imm_i rs1
  | 0x27 ->
    let imm = ((funct7 lsl 5) lor rd lxor 0x800) - 0x800 in
    Printf.sprintf "fsw f%d, %d(x%d)" rs2 imm rs1
  | 0x53 -> (
    match funct7 with
    | 0x00 -> Printf.sprintf "fadd.s f%d, f%d, f%d" rd rs1 rs2
    | 0x04 -> Printf.sprintf "fsub.s f%d, f%d, f%d" rd rs1 rs2
    | 0x08 -> Printf.sprintf "fmul.s f%d, f%d, f%d" rd rs1 rs2
    | 0x14 -> Printf.sprintf "%s f%d, f%d, f%d" (if funct3 = 1 then "fmax.s" else "fmin.s") rd rs1 rs2
    | 0x50 ->
      let name = match funct3 with 2 -> "feq.s" | 1 -> "flt.s" | 0 -> "fle.s" | _ -> "?fcmp" in
      Printf.sprintf "%s x%d, f%d, f%d" name rd rs1 rs2
    | 0x78 -> Printf.sprintf "fmv.w.x f%d, x%d" rd rs1
    | 0x70 -> Printf.sprintf "fmv.x.w x%d, f%d" rd rs1
    | _ -> "?fp")
  | 0x73 -> if w = 0x73 then "ecall" else Printf.sprintf "csrrw x%d, 0x%03x, x%d" rd (imm_i land 0xFFF) rs1
  | _ -> Printf.sprintf "?0x%08x" w
