lib/isa/isa.ml: Alu Array Buffer Format Fpu_format Hashtbl List Printf
