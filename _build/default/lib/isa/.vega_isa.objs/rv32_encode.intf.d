lib/isa/rv32_encode.mli: Isa
