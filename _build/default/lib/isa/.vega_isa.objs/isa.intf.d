lib/isa/isa.mli: Alu Format Fpu_format
