lib/isa/rv32_encode.ml: Alu Array Fpu_format Isa List Printf String
