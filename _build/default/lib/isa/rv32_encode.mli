(** RV32 machine-code encoding of {!Isa} programs.

    Renders an assembled program into actual 32-bit RISC-V instruction
    words (RV32I + F + Zicsr), the binary form in which generated test
    cases would ship to real hardware.  Pseudo-instructions expand as a
    RISC-V assembler would:

    - [Li rd, imm] becomes [addi] alone or [lui + addi] (with the usual
      sign-adjustment of the upper immediate);
    - [Ecall code] becomes [addi a7, x0, code; ecall] (the code travels in
      a7, Linux-style);
    - [Csr_fflags rd] becomes [csrrw rd, fflags, x0] (atomic read-and-clear).

    The ISS's word-addressed memory maps to byte addressing by scaling
    load/store offsets by 4.  Branch and jump offsets resolve to byte
    displacements over the expanded layout.

    Limitations: [Li] immediates must fit 32 bits; branch displacements
    must fit their encodings ({!encode} checks and reports). *)

type word = int
(** One little-endian 32-bit instruction word (value in [[0, 2^32)]). *)

val encode : Isa.program -> (word list, string) result
(** Encode the whole program; the entry instruction is at byte address 0. *)

val encode_exn : Isa.program -> word list
(** @raise Invalid_argument on encoding errors. *)

val to_hex : word list -> string
(** One 8-hex-digit word per line (Verilog [$readmemh] format). *)

val disassemble_word : word -> string
(** Best-effort mnemonic for an encoded word (for tests and debugging);
    ["?"]-prefixed when unrecognized. *)
