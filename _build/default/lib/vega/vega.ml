type phase1_config = {
  years : float;
  clock_margin : float;
  derate : float;
  clock_tree : Clock_tree.t;
  sp_fallback : float;
  max_violating_paths : int;
}

let default_phase1 =
  {
    years = 10.0;
    clock_margin = 1.015;
    derate = 1.0;
    clock_tree = Clock_tree.two_domain_gated ~sp_gated:0.05 ();
    sp_fallback = 0.5;
    max_violating_paths = 10_000;
  }

type analysis = {
  target : Lift.target;
  clock_period_ps : float;
  fresh_report : Sta.report;
  aged_report : Sta.report;
  violating_pairs : (Sta.startpoint * Sta.endpoint * Sta.check * float) list;
  sp_of_net : Netlist.net -> float;
  cell_degradation : (string * float) list;
  sp_samples : int;
}

let machine_for ?(profile_units = false) (target : Lift.target) =
  match target.Lift.kind with
  | Lift.Alu_module { width } ->
    let fmt = if width >= 16 then Fpu_format.binary16 else Fpu_format.tiny in
    Machine.create
      ~config:{ Machine.default_config with Machine.width; fmt }
      ~profile_units
      ~alu:(Machine.Alu_netlist target.Lift.netlist) ~fpu:Machine.Fpu_functional ()
  | Lift.Fpu_module { fmt } ->
    let width = max 16 (Fpu_format.width fmt) in
    Machine.create
      ~config:{ Machine.default_config with Machine.width; fmt }
      ~profile_units ~alu:Machine.Alu_functional
      ~fpu:(Machine.Fpu_netlist target.Lift.netlist) ()

(* A mixed arithmetic sweep used when no real workload is supplied: walks
   integer and floating-point operations over structured operand patterns
   approximating embench's operation mix. *)
let run_minver_workload m =
  let width = (Machine.config m).Machine.width in
  let fmt = (Machine.config m).Machine.fmt in
  let ops = [ Alu.Add; Alu.Sub; Alu.And_op; Alu.Xor_op; Alu.Sll; Alu.Srl; Alu.Slt ] in
  let prog =
    Isa.assemble
      (List.concat_map
         (fun k ->
           let a = (k * 37) land ((1 lsl width) - 1) in
           let b = (k * k) land ((1 lsl width) - 1) in
           let fa = Bitvec.to_int (Fpu_format.of_float fmt (float_of_int (k mod 9) /. 4.0)) in
           let fb = Bitvec.to_int (Fpu_format.of_float fmt (1.0 +. float_of_int (k mod 5))) in
           [
             Isa.Li (1, a);
             Isa.Li (2, b);
             Isa.Alu (List.nth ops (k mod List.length ops), 3, 1, 2);
             Isa.Li (4, fa);
             Isa.Li (5, fb);
             Isa.Fmv_wx (1, 4);
             Isa.Fmv_wx (2, 5);
             Isa.Fop ((if k mod 3 = 0 then Fpu_format.Fmul else Fpu_format.Fadd), 3, 1, 2);
           ])
         (List.init 200 (fun k -> k))
      @ [ Isa.Ecall Isa.exit_ok ])
  in
  Machine.reset m;
  ignore (Machine.run m prog)

let aging_analysis ?(config = default_phase1) (target : Lift.target) ~workload =
  let nl = target.Lift.netlist in
  let m = machine_for ~profile_units:true target in
  workload m;
  let unit_sim =
    match target.Lift.kind with
    | Lift.Alu_module _ -> Option.get (Machine.alu_sim m)
    | Lift.Fpu_module _ -> Option.get (Machine.fpu_sim m)
  in
  let sp_samples = Sim.samples unit_sim in
  let sp_of_net n = if sp_samples = 0 then config.sp_fallback else Sim.sp unit_sim n in
  let aglib = Aging.Timing_library.build Cell.Library.c28 in
  (* target clock: fresh critical path plus the signoff margin *)
  let fresh_timing =
    Sta.fresh_timing ~derate:config.derate ~clock_tree:config.clock_tree Cell.Library.c28
  in
  let fresh_probe = Sta.analyze ~timing:fresh_timing ~clock_period_ps:1e9 nl in
  let crit =
    List.fold_left
      (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
      0.0 fresh_probe.Sta.endpoint_slacks
  in
  let clock_period_ps = crit *. config.clock_margin in
  let fresh_report = Sta.analyze ~timing:fresh_timing ~clock_period_ps nl in
  let aged_timing =
    Sta.aged_timing ~derate:config.derate ~clock_tree:config.clock_tree ~sp_of_net
      ~years:config.years aglib
  in
  let aged_report =
    Sta.analyze ~max_violating_paths:config.max_violating_paths ~timing:aged_timing
      ~clock_period_ps nl
  in
  let violating_pairs = Sta.violating_pairs ~timing:aged_timing ~clock_period_ps nl in
  let cell_degradation =
    Array.to_list (Netlist.cells nl)
    |> List.filter_map (fun (c : Netlist.cell) ->
           if Cell.Kind.is_sequential c.Netlist.kind || Cell.Kind.arity c.Netlist.kind = 0 then
             None
           else
             Some
               ( c.Netlist.name,
                 Aging.Timing_library.factor aglib c.Netlist.kind
                   ~sp:(sp_of_net c.Netlist.output) ~years:config.years ))
  in
  {
    target;
    clock_period_ps;
    fresh_report;
    aged_report;
    violating_pairs;
    sp_of_net;
    cell_degradation;
    sp_samples;
  }

let error_lifting ?config analysis =
  Lift.lift_violating_pairs ?config analysis.target analysis.violating_pairs

type workflow_report = {
  analysis : analysis;
  pair_results : Lift.pair_result list;
  suite : Lift.suite;
  suite_cycles : int;
}

let suite_cycles (suite : Lift.suite) =
  if suite.Lift.suite_cases = [] then 0
  else begin
    let width, fmt =
      match suite.Lift.suite_target with
      | Lift.Alu_module { width } ->
        (* machine word width must equal the ALU width so that the golden
           expectations baked into the cases line up *)
        (width, if width >= 16 then Fpu_format.binary16 else Fpu_format.tiny)
      | Lift.Fpu_module { fmt } -> (max 16 (Fpu_format.width fmt), fmt)
    in
    let m =
      Machine.create
        ~config:{ Machine.default_config with Machine.width; fmt }
        ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional ()
    in
    Machine.reset m;
    match Machine.run m (Lift.suite_program suite) with
    | Machine.Exited code when code = Isa.exit_ok -> Machine.cycles m
    | o ->
      invalid_arg
        (Format.asprintf "Vega.suite_cycles: healthy suite did not pass (%a)" Machine.pp_outcome
           o)
  end

let run_workflow ?phase1 ?phase2 target ~workload =
  let analysis = aging_analysis ?config:phase1 target ~workload in
  let pair_results = error_lifting ?config:phase2 analysis in
  let suite = Lift.suite_of_results target.Lift.kind pair_results in
  { analysis; pair_results; suite; suite_cycles = suite_cycles suite }

let classification_counts results =
  List.map
    (fun cls ->
      ( cls,
        List.length
          (List.filter (fun (r : Lift.pair_result) -> r.Lift.classification = cls) results) ))
    [ Lift.S; Lift.UR; Lift.FF; Lift.FC ]
