let resistance_scale = 1.0

let stage_resistance (e : Cell.electrical) ~vth =
  if vth >= e.vdd then
    invalid_arg
      (Printf.sprintf "Spice.stage_resistance: vth %.3f >= vdd %.3f" vth e.vdd);
  resistance_scale *. e.stack_factor /. ((e.vdd -. vth) ** e.alpha)

(* One R unit charging one fF maps to 10 ps so that fresh c28-class cells land
   in the tens-of-picoseconds range. *)
let ps_per_rc = 10.0

let stage_delay_ps e ~vth =
  stage_resistance e ~vth *. e.cload_ff *. ps_per_rc *. log 2.0

let transient_delay_ps ?(dt_ps = 0.01) (e : Cell.electrical) ~vth =
  let r = stage_resistance e ~vth in
  let c = e.cload_ff *. ps_per_rc in
  if c <= 0.0 then 0.0
  else begin
    let tau = r *. c in
    let target = e.vdd /. 2.0 in
    (* Forward-Euler integration of C dV/dt = (Vdd - V)/R until the output
       crosses Vdd/2, with linear interpolation inside the last step. *)
    let rec step t v =
      if v >= target then t
      else begin
        let dv = (e.vdd -. v) /. tau *. dt_ps in
        let v' = v +. dv in
        if v' >= target then t +. (dt_ps *. ((target -. v) /. dv))
        else step (t +. dt_ps) v'
      end
    in
    step 0.0 0.0
  end

let degradation_factor (e : Cell.electrical) ~dvth =
  let fresh = stage_delay_ps e ~vth:e.vth0 in
  if fresh <= 0.0 then 1.0
  else stage_delay_ps e ~vth:(e.vth0 +. dvth) /. fresh
