(** SPICE-lite: a miniature analog model of a CMOS logic stage.

    The paper builds its aging-aware timing library by sweeping each standard
    cell in SPICE with shifted threshold voltages and recording the resulting
    switching-delay change.  This module is the laptop-scale substitute: a
    cell's switching stage is modeled as an RC network whose pull-up
    resistance follows the alpha-power law

    {[ R(Vth) = k * stack_factor / (Vdd - Vth)^alpha ]}

    and whose output charges a lumped load capacitance.  Both a closed-form
    50 %-crossing delay and a numerically integrated transient response are
    provided; the transient integrator is the "simulation", the closed form
    is its regression oracle.  What the rest of the system consumes is
    {!degradation_factor}: the multiplicative delay increase caused by a
    threshold-voltage shift, which is exactly the quantity the authors
    extract from their SPICE sweeps. *)

val stage_resistance : Cell.electrical -> vth:float -> float
(** Effective charging resistance (arbitrary units consistent across calls)
    of the stage at threshold voltage [vth].
    @raise Invalid_argument if [vth >= vdd]. *)

val stage_delay_ps : Cell.electrical -> vth:float -> float
(** Closed-form 50 %-crossing delay of the stage, [R * C * ln 2], scaled to
    picoseconds. *)

val transient_delay_ps :
  ?dt_ps:float -> Cell.electrical -> vth:float -> float
(** Numerically integrated (forward-Euler) transient 50 %-crossing delay.
    Agrees with {!stage_delay_ps} to well under a percent at the default
    step.  [dt_ps] is the integration step (default 0.01). *)

val degradation_factor : Cell.electrical -> dvth:float -> float
(** [degradation_factor e ~dvth] is [delay(vth0 + dvth) / delay(vth0)] — the
    multiplicative slow-down caused by a BTI threshold shift of [dvth]
    volts.  Always [>= 1.0] for [dvth >= 0.0]. *)
