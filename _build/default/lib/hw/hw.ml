module B = Netlist.Builder

type ctx = {
  b : B.t;
  mutable c_tie0 : Netlist.net option;
  mutable c_tie1 : Netlist.net option;
}

type wire = Netlist.net
type vec = wire array

let create name = { b = B.create name; c_tie0 = None; c_tie1 = None }
let finish c = B.finish c.b
let builder c = c.b

let input c name width = B.add_input c.b name width
let output c name v = B.add_output c.b name v

let tie0 c =
  match c.c_tie0 with
  | Some n -> n
  | None ->
    let n = B.add_cell ~name:"_tie0" c.b Cell.Kind.Tie0 [||] in
    c.c_tie0 <- Some n;
    n

let tie1 c =
  match c.c_tie1 with
  | Some n -> n
  | None ->
    let n = B.add_cell ~name:"_tie1" c.b Cell.Kind.Tie1 [||] in
    c.c_tie1 <- Some n;
    n

let const_vec c ~width v =
  Array.init width (fun i -> if v land (1 lsl i) <> 0 then tie1 c else tie0 c)

let gate1 c kind a = B.add_cell c.b kind [| a |]
let gate2 c kind a b = B.add_cell c.b kind [| a; b |]

let not_ c a = gate1 c Cell.Kind.Not a
let buf c a = gate1 c Cell.Kind.Buf a
let and_ c a b = gate2 c Cell.Kind.And2 a b
let or_ c a b = gate2 c Cell.Kind.Or2 a b
let xor_ c a b = gate2 c Cell.Kind.Xor2 a b
let nand_ c a b = gate2 c Cell.Kind.Nand2 a b
let nor_ c a b = gate2 c Cell.Kind.Nor2 a b
let xnor_ c a b = gate2 c Cell.Kind.Xnor2 a b

let mux c ~sel ~if0 ~if1 = B.add_cell c.b Cell.Kind.Mux2 [| if0; if1; sel |]

let check_same_width name a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Hw.%s: width mismatch (%d vs %d)" name (Array.length a)
         (Array.length b))

let not_vec c v = Array.map (not_ c) v
let map2 c f a b = Array.init (Array.length a) (fun i -> f c a.(i) b.(i))

let and_vec c a b = check_same_width "and_vec" a b; map2 c and_ a b
let or_vec c a b = check_same_width "or_vec" a b; map2 c or_ a b
let xor_vec c a b = check_same_width "xor_vec" a b; map2 c xor_ a b

let mux_vec c ~sel ~if0 ~if1 =
  check_same_width "mux_vec" if0 if1;
  Array.init (Array.length if0) (fun i -> mux c ~sel ~if0:if0.(i) ~if1:if1.(i))

let reduce c op v =
  if Array.length v = 0 then invalid_arg "Hw.reduce: empty vector";
  let rec go = function
    | [] -> assert false
    | [ x ] -> x
    | xs ->
      (* balanced: combine adjacent pairs *)
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | x :: y :: tl -> op c x y :: pair tl
      in
      go (pair xs)
  in
  go (Array.to_list v)

let reduce_and c v = reduce c and_ v
let reduce_or c v = reduce c or_ v
let reduce_xor c v = reduce c xor_ v

let is_zero c v = not_ c (reduce_or c v)
let equal_vec c a b = check_same_width "equal_vec" a b; is_zero c (xor_vec c a b)

let reg c ?name ?(domain = 0) ?(reset = false) d =
  B.add_cell ?name ~clock_domain:domain ~reset_value:reset c.b Cell.Kind.Dff [| d |]

let reg_vec c ?prefix ?(domain = 0) v =
  Array.mapi
    (fun i d ->
      let name = Option.map (fun p -> Printf.sprintf "%s%d" p i) prefix in
      reg c ?name ~domain d)
    v

let full_adder c a b cin =
  let axb = xor_ c a b in
  let sum = xor_ c axb cin in
  let carry = or_ c (and_ c a b) (and_ c axb cin) in
  (sum, carry)

let ripple_add c a b ~cin =
  check_same_width "ripple_add" a b;
  let n = Array.length a in
  let sum = Array.make n cin in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let s, co = full_adder c a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := co
  done;
  (sum, !carry)

(* Carry-select adder: blocks of [block] bits computed twice (carry-in 0
   and 1), the late carry picking the right sum with a mux - the classic
   trade of area for a shorter critical path. *)
let carry_select_add c ?(block = 4) a b ~cin =
  check_same_width "carry_select_add" a b;
  let n = Array.length a in
  if block < 1 then invalid_arg "Hw.carry_select_add: block must be positive";
  let sum = Array.make n cin in
  let carry = ref cin in
  let pos = ref 0 in
  while !pos < n do
    let width = min block (n - !pos) in
    let ablk = Array.sub a !pos width and bblk = Array.sub b !pos width in
    if !pos = 0 then begin
      (* first block: plain ripple from the real carry-in *)
      let s, co = ripple_add c ablk bblk ~cin:!carry in
      Array.blit s 0 sum !pos width;
      carry := co
    end
    else begin
      let s0, c0 = ripple_add c ablk bblk ~cin:(tie0 c) in
      let s1, c1 = ripple_add c ablk bblk ~cin:(tie1 c) in
      let sel = !carry in
      let s = mux_vec c ~sel ~if0:s0 ~if1:s1 in
      Array.blit s 0 sum !pos width;
      carry := mux c ~sel ~if0:c0 ~if1:c1
    end;
    pos := !pos + width
  done;
  (sum, !carry)

let ripple_sub c a b =
  let sum, carry = ripple_add c a (not_vec c b) ~cin:(tie1 c) in
  (sum, carry)

let ult c a b =
  let _, not_borrow = ripple_sub c a b in
  not_ c not_borrow

let slt c a b =
  check_same_width "slt" a b;
  let n = Array.length a in
  let sa = a.(n - 1) and sb = b.(n - 1) in
  let unsigned_lt = ult c a b in
  mux c ~sel:(xor_ c sa sb) ~if0:unsigned_lt ~if1:sa

let incr_vec c v =
  let zero = Array.map (fun _ -> tie0 c) v in
  fst (ripple_add c v zero ~cin:(tie1 c))

(* Logarithmic barrel shifter.  [fill] provides the bit shifted in. *)
let barrel_right c v ~amount ~fill =
  let n = Array.length v in
  let stages = Array.length amount in
  let cur = ref v in
  for i = 0 to stages - 1 do
    let sh = 1 lsl i in
    let shifted =
      Array.init n (fun j -> if sh < n && j + sh < n then !cur.(j + sh) else fill)
    in
    (* when sh >= n every bit becomes fill *)
    let shifted = if sh >= n then Array.make n fill else shifted in
    cur := mux_vec c ~sel:amount.(i) ~if0:!cur ~if1:shifted
  done;
  !cur

let shift_right_logical c v ~amount = barrel_right c v ~amount ~fill:(tie0 c)

let shift_right_arith c v ~amount =
  let n = Array.length v in
  barrel_right c v ~amount ~fill:v.(n - 1)

let shift_left c v ~amount =
  let n = Array.length v in
  let stages = Array.length amount in
  let cur = ref v in
  for i = 0 to stages - 1 do
    let sh = 1 lsl i in
    let shifted =
      if sh >= n then Array.make n (tie0 c)
      else Array.init n (fun j -> if j - sh >= 0 then !cur.(j - sh) else tie0 c)
    in
    cur := mux_vec c ~sel:amount.(i) ~if0:!cur ~if1:shifted
  done;
  !cur

let onehot_decode c sel =
  let n = Array.length sel in
  let count = 1 lsl n in
  Array.init count (fun k ->
      let terms =
        Array.init n (fun i -> if k land (1 lsl i) <> 0 then sel.(i) else not_ c sel.(i))
      in
      reduce_and c terms)

let rec mux_tree c ~sel cases =
  match cases with
  | [] -> invalid_arg "Hw.mux_tree: no cases"
  | first :: rest ->
    List.iter (check_same_width "mux_tree" first) rest;
    if Array.length sel = 0 then first
    else begin
      let s0 = sel.(0) in
      let rest_sel = Array.sub sel 1 (Array.length sel - 1) in
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | x :: y :: tl -> mux_vec c ~sel:s0 ~if0:x ~if1:y :: pair tl
      in
      mux_tree c ~sel:rest_sel (pair cases)
    end

let leading_zero_count c v =
  let n = Array.length v in
  let bits_needed =
    let rec go k = if 1 lsl k > n then k else go (k + 1) in
    go 1
  in
  (* prefix-OR from the MSB down: seen.(i) = v[n-1] | ... | v[i] *)
  let seen = Array.make n (tie0 c) in
  seen.(n - 1) <- buf c v.(n - 1);
  for i = n - 2 downto 0 do
    seen.(i) <- or_ c seen.(i + 1) v.(i)
  done;
  (* count positions (from the top) still unseen *)
  let count = ref (Array.init bits_needed (fun _ -> tie0 c)) in
  for i = n - 1 downto 0 do
    let zero = Array.map (fun _ -> tie0 c) !count in
    let bumped, _ = ripple_add c !count zero ~cin:(not_ c seen.(i)) in
    count := bumped
  done;
  !count
