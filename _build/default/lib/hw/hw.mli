(** A hardware-construction DSL over the netlist builder.

    This is the synthesis substitute: instead of compiling Verilog through a
    commercial flow, datapaths are described as OCaml combinators that
    elaborate directly into standard-cell netlists — wires are nets, vectors
    are LSB-first wire arrays, and every combinator instantiates real gates.
    The ALU and FPU generators are written against this module, which makes
    their netlists structurally honest: ripple-carry chains, barrel
    shifters, mux trees, array multipliers and leading-zero counters all
    appear as the cell-level structures an actual synthesizer would emit. *)

type ctx
type wire = Netlist.net
type vec = wire array  (** LSB first *)

val create : string -> ctx
val finish : ctx -> Netlist.t
val builder : ctx -> Netlist.Builder.t

(** {1 Ports} *)

val input : ctx -> string -> int -> vec
val output : ctx -> string -> vec -> unit

(** {1 Constants} *)

val tie0 : ctx -> wire
(** The constant-0 wire (one shared cell per context). *)

val tie1 : ctx -> wire
val const_vec : ctx -> width:int -> int -> vec

(** {1 Gates} *)

val not_ : ctx -> wire -> wire
val buf : ctx -> wire -> wire
val and_ : ctx -> wire -> wire -> wire
val or_ : ctx -> wire -> wire -> wire
val xor_ : ctx -> wire -> wire -> wire
val nand_ : ctx -> wire -> wire -> wire
val nor_ : ctx -> wire -> wire -> wire
val xnor_ : ctx -> wire -> wire -> wire

val mux : ctx -> sel:wire -> if0:wire -> if1:wire -> wire
(** 2-way mux: [sel] picks [if1], otherwise [if0]. *)

(** {1 Vector operations} *)

val not_vec : ctx -> vec -> vec
val and_vec : ctx -> vec -> vec -> vec
val or_vec : ctx -> vec -> vec -> vec
val xor_vec : ctx -> vec -> vec -> vec
val mux_vec : ctx -> sel:wire -> if0:vec -> if1:vec -> vec

val reduce_and : ctx -> vec -> wire
(** Balanced AND tree.  @raise Invalid_argument on an empty vector. *)

val reduce_or : ctx -> vec -> wire
val reduce_xor : ctx -> vec -> wire

val is_zero : ctx -> vec -> wire
val equal_vec : ctx -> vec -> vec -> wire

(** {1 Registers} *)

val reg : ctx -> ?name:string -> ?domain:int -> ?reset:bool -> wire -> wire
val reg_vec : ctx -> ?prefix:string -> ?domain:int -> vec -> vec
(** Register every bit; with [prefix], bits are named ["prefix<i>"]. *)

(** {1 Arithmetic} *)

val full_adder : ctx -> wire -> wire -> wire -> wire * wire
(** [full_adder c a b cin] is (sum, carry-out): two XORs, two ANDs, an OR. *)

val ripple_add : ctx -> vec -> vec -> cin:wire -> vec * wire
(** Ripple-carry addition; returns (sum, carry-out).
    @raise Invalid_argument on width mismatch. *)

val carry_select_add : ctx -> ?block:int -> vec -> vec -> cin:wire -> vec * wire
(** Carry-select addition: each [block]-bit segment (default 4) is computed
    for both possible carry-ins and the arriving carry selects — more area,
    a much shorter carry-critical path than {!ripple_add}.  Functionally
    identical to ripple addition (the test suite proves it with the formal
    equivalence checker). *)

val ripple_sub : ctx -> vec -> vec -> vec * wire
(** [a - b] as [a + ~b + 1]; the carry-out is the NOT-borrow. *)

val ult : ctx -> vec -> vec -> wire
(** Unsigned a < b (borrow of the subtraction). *)

val slt : ctx -> vec -> vec -> wire
(** Signed a < b. *)

val incr_vec : ctx -> vec -> vec

(** {1 Shifters} *)

val shift_right_logical : ctx -> vec -> amount:vec -> vec
(** Logarithmic barrel shifter; [amount] wider than needed saturates to
    zero output (every bit shifted out). *)

val shift_left : ctx -> vec -> amount:vec -> vec
val shift_right_arith : ctx -> vec -> amount:vec -> vec

(** {1 Selection} *)

val onehot_decode : ctx -> vec -> vec
(** [n]-bit selector to [2^n] one-hot wires. *)

val mux_tree : ctx -> sel:vec -> vec list -> vec
(** Select among [2^(width sel)] equal-width vectors (missing tail cases
    read as the last provided vector).
    @raise Invalid_argument when the list is empty or widths differ. *)

(** {1 Priority logic} *)

val leading_zero_count : ctx -> vec -> vec
(** Number of zero bits above the most-significant 1, as a
    [ceil(log2 (n+1))]-bit vector; equals [n] when the input is all-zero.
    Built as a priority chain (MSB first). *)
