type op = Add | Sub | Sll | Slt | Sltu | Xor_op | Srl | Sra | Or_op | And_op

let all_ops = [ Add; Sub; Sll; Slt; Sltu; Xor_op; Srl; Sra; Or_op; And_op ]

let op_code = function
  | Add -> 0
  | Sub -> 1
  | Sll -> 2
  | Slt -> 3
  | Sltu -> 4
  | Xor_op -> 5
  | Srl -> 6
  | Sra -> 7
  | Or_op -> 8
  | And_op -> 9

let op_of_code code = List.find_opt (fun o -> op_code o = code) all_ops

let op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Sll -> "sll"
  | Slt -> "slt"
  | Sltu -> "sltu"
  | Xor_op -> "xor"
  | Srl -> "srl"
  | Sra -> "sra"
  | Or_op -> "or"
  | And_op -> "and"

let op_of_name name = List.find_opt (fun o -> String.equal (op_name o) name) all_ops

let log2 n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let golden ~width op a b =
  if Bitvec.width a <> width || Bitvec.width b <> width then
    invalid_arg "Alu.golden: operand width mismatch";
  let shamt = Bitvec.to_int b land ((1 lsl log2 width) - 1) in
  let flag cond = if cond then Bitvec.one width else Bitvec.zero width in
  match op with
  | Add -> Bitvec.add a b
  | Sub -> Bitvec.sub a b
  | Sll -> Bitvec.shift_left a shamt
  | Slt -> flag (Bitvec.slt a b)
  | Sltu -> flag (Bitvec.ult a b)
  | Xor_op -> Bitvec.logxor a b
  | Srl -> Bitvec.shift_right_logical a shamt
  | Sra -> Bitvec.shift_right_arith a shamt
  | Or_op -> Bitvec.logor a b
  | And_op -> Bitvec.logand a b

let op_port = "op"
let a_port = "a"
let b_port = "b"
let r_port = "r"
let latency = 2
let op_bits = 4

type adder_style = Ripple | Carry_select

let netlist ?(width = 16) ?(adder = Ripple) () =
  if width < 4 || width > 32 || width land (width - 1) <> 0 then
    invalid_arg "Alu.netlist: width must be a power of two in [4, 32]";
  let add_vec c x y ~cin =
    match adder with
    | Ripple -> Hw.ripple_add c x y ~cin
    | Carry_select -> Hw.carry_select_add c x y ~cin
  in
  (* comparisons share the selected adder architecture, as a synthesizer
     sharing datapath resources would *)
  let ult_vec c x y =
    let _, not_borrow = add_vec c x (Hw.not_vec c y) ~cin:(Hw.tie1 c) in
    Hw.not_ c not_borrow
  in
  let slt_vec c x y =
    let n = Array.length x in
    let sa = x.(n - 1) and sb = y.(n - 1) in
    Hw.mux c ~sel:(Hw.xor_ c sa sb) ~if0:(ult_vec c x y) ~if1:sa
  in
  let c = Hw.create (Printf.sprintf "alu%d" width) in
  let op_in = Hw.input c op_port op_bits in
  let a_in = Hw.input c a_port width in
  let b_in = Hw.input c b_port width in
  (* input rank *)
  let opq = Hw.reg_vec c ~prefix:"op_q" op_in in
  let a = Hw.reg_vec c ~prefix:"a_q" a_in in
  let b = Hw.reg_vec c ~prefix:"b_q" b_in in
  (* shared adder/subtractor: b xor sub_mask, cin = is_sub *)
  let shamt = Array.sub b 0 (log2 width) in
  let zero = Hw.const_vec c ~width 0 in
  let widen bit = Array.init width (fun i -> if i = 0 then bit else Hw.tie0 c) in
  let results =
    List.map
      (fun op ->
        match op with
        | Add -> fst (add_vec c a b ~cin:(Hw.tie0 c))
        | Sub -> fst (add_vec c a (Hw.not_vec c b) ~cin:(Hw.tie1 c))
        | Sll -> Hw.shift_left c a ~amount:shamt
        | Slt -> widen (slt_vec c a b)
        | Sltu -> widen (ult_vec c a b)
        | Xor_op -> Hw.xor_vec c a b
        | Srl -> Hw.shift_right_logical c a ~amount:shamt
        | Sra -> Hw.shift_right_arith c a ~amount:shamt
        | Or_op -> Hw.or_vec c a b
        | And_op -> Hw.and_vec c a b)
      all_ops
  in
  (* opcode-selected result: 4-bit mux tree over the 10 ops (codes 10..15
     fall through to the last case) *)
  let padded = results @ [ zero; zero; zero; zero; zero; zero ] in
  let result = Hw.mux_tree c ~sel:opq padded in
  let r = Hw.reg_vec c ~prefix:"r_q" result in
  Hw.output c r_port r;
  Hw.finish c

let valid_op_assume nl =
  let codes = List.map (fun o -> Bitvec.create ~width:op_bits (op_code o)) all_ops in
  Formal.port_in nl op_port codes
