type config = {
  temp_k : float;
  ea_ev : float;
  time_exponent : float;
  duty_floor : float;
  calibration_dvth_10y : float;
  recovery_fraction : float;
  em_drift_10y : float;
  em_current_exponent : float;
  em_time_exponent : float;
}

let default_config =
  {
    temp_k = 398.0;
    ea_ev = 0.12;
    time_exponent = 1.0 /. 6.0;
    duty_floor = 0.11;
    calibration_dvth_10y = 0.0265;
    recovery_fraction = 0.35;
    em_drift_10y = 0.03;
    em_current_exponent = 2.0;
    em_time_exponent = 0.5;
  }

let seconds_per_year = 3.1557e7
let boltzmann_ev_per_k = 8.617e-5

let arrhenius cfg = exp (-.cfg.ea_ev /. (boltzmann_ev_per_k *. cfg.temp_k))

(* Technology prefactor solved from the calibration anchor:
   dVth(duty=1, 10 years) = calibration_dvth_10y. *)
let prefactor cfg =
  let t10 = 10.0 *. seconds_per_year in
  cfg.calibration_dvth_10y /. (arrhenius cfg *. (t10 ** cfg.time_exponent))

let duty_of_sp cfg sp =
  if sp < -.1e-9 || sp > 1.0 +. 1e-9 then
    invalid_arg (Printf.sprintf "Aging.duty_of_sp: sp %.4f outside [0, 1]" sp);
  let sp = Float.min 1.0 (Float.max 0.0 sp) in
  cfg.duty_floor +. ((1.0 -. cfg.duty_floor) *. (1.0 -. sp))

let delta_vth cfg ~duty ~years =
  if years <= 0.0 then 0.0
  else
    let t = years *. seconds_per_year in
    prefactor cfg *. arrhenius cfg *. sqrt duty *. (t ** cfg.time_exponent)

let delta_vth_of_sp cfg ~sp ~years = delta_vth cfg ~duty:(duty_of_sp cfg sp) ~years

let delta_vth_duty_cycled cfg ~duty ~on_fraction ~years =
  if on_fraction < 0.0 || on_fraction > 1.0 then
    invalid_arg "Aging.delta_vth_duty_cycled: on_fraction outside [0, 1]";
  let base = delta_vth cfg ~duty ~years:(years *. on_fraction) in
  (* partial annealing during the off periods removes up to
     recovery_fraction of the accumulated shift *)
  base *. (1.0 -. (cfg.recovery_fraction *. (1.0 -. on_fraction)))

(* Electromigration (the paper's 6.3 extension): interconnect metal under
   high current density degrades; with current density proportional to the
   switching activity of the driving cell, the wire-resistance drift follows
   Black's-equation kinetics, slowing the net's transitions. *)
let em_delay_factor cfg ~toggle_rate ~years =
  if toggle_rate < 0.0 || toggle_rate > 1.0 then
    invalid_arg "Aging.em_delay_factor: toggle_rate outside [0, 1]";
  if years <= 0.0 then 1.0
  else
    1.0
    +. cfg.em_drift_10y
       *. (toggle_rate ** cfg.em_current_exponent)
       *. ((years /. 10.0) ** cfg.em_time_exponent)

let recovered cfg ~dvth ~relax_years =
  if relax_years <= 0.0 then dvth
  else
    (* Relaxation follows the same fractional-power kinetics; saturates at
       removing [recovery_fraction] of the accumulated shift. *)
    let progress = 1.0 -. (1.0 /. (1.0 +. (relax_years ** cfg.time_exponent))) in
    dvth *. (1.0 -. (cfg.recovery_fraction *. progress))

module Timing_library = struct
  type t = {
    config : config;
    cell_library : Cell.Library.t;
    sp_steps : int;
    year_steps : int;
    max_years : float;
    (* grid.(kind_index).(sp_index).(year_index) = degradation factor *)
    grid : float array array array;
    kinds : Cell.Kind.t array;
  }

  let max_years_default = 10.0

  let kind_index kinds kind =
    let rec go i =
      if i >= Array.length kinds then invalid_arg "Timing_library: unknown cell kind"
      else if Cell.Kind.equal kinds.(i) kind then i
      else go (i + 1)
    in
    go 0

  let compute_factor cfg lib kind ~sp ~years =
    let e = Cell.Library.electrical lib kind in
    let dvth = delta_vth_of_sp cfg ~sp ~years in
    Spice.degradation_factor e ~dvth

  let build ?(config = default_config) ?(sp_steps = 20) ?(year_steps = 10) cell_library =
    let kinds = Array.of_list Cell.Kind.all in
    let max_years = max_years_default in
    let grid =
      Array.map
        (fun kind ->
          Array.init (sp_steps + 1) (fun si ->
              let sp = float_of_int si /. float_of_int sp_steps in
              Array.init (year_steps + 1) (fun yi ->
                  let years = max_years *. float_of_int yi /. float_of_int year_steps in
                  compute_factor config cell_library kind ~sp ~years)))
        kinds
    in
    { config; cell_library; sp_steps; year_steps; max_years; grid; kinds }

  let config t = t.config
  let cell_library t = t.cell_library

  let clamp lo hi x = Float.min hi (Float.max lo x)

  let factor t kind ~sp ~years =
    let sp = clamp 0.0 1.0 sp in
    let years = clamp 0.0 t.max_years years in
    let ki = kind_index t.kinds kind in
    let sf = sp *. float_of_int t.sp_steps in
    let yf = years /. t.max_years *. float_of_int t.year_steps in
    let s0 = int_of_float (Float.floor sf) in
    let y0 = int_of_float (Float.floor yf) in
    let s1 = min (s0 + 1) t.sp_steps and y1 = min (y0 + 1) t.year_steps in
    let ws = sf -. float_of_int s0 and wy = yf -. float_of_int y0 in
    let g = t.grid.(ki) in
    let v00 = g.(s0).(y0) and v01 = g.(s0).(y1) in
    let v10 = g.(s1).(y0) and v11 = g.(s1).(y1) in
    let v0 = v00 +. ((v01 -. v00) *. wy) in
    let v1 = v10 +. ((v11 -. v10) *. wy) in
    v0 +. ((v1 -. v0) *. ws)

  let factor_exact t kind ~sp ~years = compute_factor t.config t.cell_library kind ~sp ~years

  let aged_timing t kind ~sp ~years =
    let fresh = Cell.Library.timing t.cell_library kind in
    let f = factor t kind ~sp ~years in
    { fresh with Cell.tpd_max_ps = fresh.Cell.tpd_max_ps *. f }
end
