(** Transistor-aging physics (reaction–diffusion BTI model) and the
    precomputed aging-aware timing library.

    The reaction–diffusion model (paper Eq. 1) gives the threshold-voltage
    shift of a transistor under bias-temperature-instability stress:

    {[ dVth = a_tech * exp(-Ea / (k*T)) * duty^0.5 * t^(1/6) ]}

    where [duty] is the fraction of time the device spends under static
    stress and [t] the accumulated stress time.  (The paper prints the
    Arrhenius factor as [e^(Ea/kT)]; we use the physically standard negative
    exponent — higher temperature accelerates aging — and calibrate the
    prefactor so that the 10-year delay degradation of heavily stressed
    cells matches the 1.9 %–6 % range the paper reports in Fig. 8.)

    Because p-type transistors suffer BTI far more than n-type ones, cells
    whose output idles at logical "0" (low signal probability) age fastest;
    {!duty_of_sp} captures this with a floor that models the residual aging
    of regularly switching cells.

    {!Timing_library} is the "pre-computed SPICE sweep" of the paper: a grid
    of delay-degradation factors per cell kind x signal probability x age,
    built once per standard-cell library and interpolated during
    aging-aware STA. *)

type config = {
  temp_k : float;  (** worst-case junction temperature (K) for the analysis corner *)
  ea_ev : float;  (** activation energy (eV) of the process technology *)
  time_exponent : float;  (** the reaction-diffusion time exponent, 1/6 *)
  duty_floor : float;
      (** minimum effective stress duty: even cells that toggle regularly
          accumulate some BTI damage *)
  calibration_dvth_10y : float;
      (** dVth (volts) of a fully stressed (duty = 1) device after 10 years
          at [temp_k]; anchors the technology prefactor *)
  recovery_fraction : float;
      (** fraction of accumulated dVth that can anneal out during a long
          relaxation period (partial-recovery property of BTI) *)
  em_drift_10y : float;
      (** electromigration: fractional wire-delay drift after 10 years at
          full switching activity *)
  em_current_exponent : float;  (** Black's-equation current exponent (~2) *)
  em_time_exponent : float;  (** kinetics of the resistance drift *)
}

val default_config : config
(** 125 degC corner, Ea = 0.12 eV, t^(1/6), duty floor 0.11, 26.5 mV at ten
    years — reproducing the paper's 1.9-6 % degradation span. *)

val seconds_per_year : float

val duty_of_sp : config -> float -> float
(** [duty_of_sp cfg sp] maps a signal probability (fraction of time the cell
    output is at logical "1") to an effective BTI stress duty in
    [[duty_floor, 1]].  Monotonically decreasing in [sp].
    @raise Invalid_argument if [sp] is outside [[0, 1]]. *)

val delta_vth : config -> duty:float -> years:float -> float
(** Threshold-voltage shift (volts) after [years] of stress at the given
    duty.  Zero at [years = 0]; grows as [years^(1/6)]. *)

val delta_vth_of_sp : config -> sp:float -> years:float -> float
(** Composition of {!duty_of_sp} and {!delta_vth}. *)

val delta_vth_duty_cycled : config -> duty:float -> on_fraction:float -> years:float -> float
(** Threshold shift for a device stressed only during an [on_fraction] of
    its service life (duty-cycled operation, e.g. a unit behind power or
    clock gating that alternates between use and idling in a benign state):
    the stress time scales by [on_fraction] and the off periods anneal away
    part of the accumulated damage — the anti-aging scheduling idea the
    paper cites as software mitigation.
    @raise Invalid_argument if [on_fraction] is outside [[0, 1]]. *)

val em_delay_factor : config -> toggle_rate:float -> years:float -> float
(** Electromigration-induced delay factor for a net whose driving cell
    toggles [toggle_rate] of the cycles (the §6.3 "further reliability
    issues" extension).  Complements BTI: EM punishes the *most active*
    nets, BTI the most idle ones.
    @raise Invalid_argument if [toggle_rate] is outside [[0, 1]]. *)

val recovered : config -> dvth:float -> relax_years:float -> float
(** Residual shift after a stress-free relaxation period: BTI partially
    anneals, asymptotically removing [recovery_fraction] of the damage. *)

(** The aging-aware timing library: per-kind delay-degradation factors as a
    function of signal probability and age, precomputed on a grid by running
    the SPICE-lite stage model on every cell of a standard-cell library. *)
module Timing_library : sig
  type t

  val build : ?config:config -> ?sp_steps:int -> ?year_steps:int -> Cell.Library.t -> t
  (** Precompute the degradation grid for every cell kind of the library.
      [sp_steps] (default 20) and [year_steps] (default 10) control grid
      resolution; lookups interpolate bilinearly. *)

  val config : t -> config
  val cell_library : t -> Cell.Library.t

  val factor : t -> Cell.Kind.t -> sp:float -> years:float -> float
  (** Multiplicative max-delay degradation for a cell of the given kind whose
      output signal probability is [sp], after [years] of service.  Always
      [>= 1.0]. *)

  val factor_exact : t -> Cell.Kind.t -> sp:float -> years:float -> float
  (** Same quantity computed directly (no grid); the regression oracle for
      {!factor}. *)

  val aged_timing : t -> Cell.Kind.t -> sp:float -> years:float -> Cell.timing
  (** Fresh timing of the kind with its max delay scaled by {!factor}.  The
      min delay is left at its fresh value: aging slows cells down, so the
      fresh minimum remains the conservative bound for hold analysis. *)
end
