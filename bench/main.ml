(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs one Bechamel micro-benchmark per table/figure kernel,
   and prints the ablation studies called out in DESIGN.md.

   Usage:
     bench/main.exe            full run (tables + micro-benchmarks + ablations)
     bench/main.exe quick      reduced configuration
     bench/main.exe micro      micro-benchmarks only
     bench/main.exe ablations  ablation studies only
     bench/main.exe analyze    static Spbound triage: prune rate and pair-sweep
                               speedup on alu8/fpu16, written to
                               BENCH_analyze.json
     bench/main.exe check      CEC vs random-vector validation timing
     bench/main.exe resilience supervisor smoke: formal vs fallback cost,
                               budget-sliced ALU8 lifting with the ladder
     bench/main.exe telemetry  instrumented ALU8 pipeline; writes counters,
                               histograms and span totals to
                               BENCH_telemetry.json (the perf trajectory seed)
     bench/main.exe fleet      fleet-pool multicore scaling: the quick device
                               population at 1/2/4 worker domains, wall-clock
                               and byte-identity, written to BENCH_fleet.json
     bench/main.exe repair     aging-aware repair on the ALU8 sweep: recovered
                               slack, proof counters and wall-clock, written
                               to BENCH_repair.json
     bench/main.exe <id>       one experiment: fig4 table1 table2 fig8
                               table3 table4 table5 table6 table7 fig9 *)

open Bechamel
open Toolkit

(* ------------- shared small fixtures for the micro-benchmarks ------------- *)

let alu8 = Lift.alu_target ~width:8 ()
let fpu16_netlist = Fpu.netlist ()
let c28 = Cell.Library.c28
let aglib = Aging.Timing_library.build c28

let aged_timing_alu8 =
  Sta.aged_timing ~clock_tree:(Clock_tree.two_domain_gated ~sp_gated:0.05 ())
    ~sp_of_net:(fun _ -> 0.3)
    ~years:10.0 aglib

let alu8_fresh_crit =
  let tree = Clock_tree.two_domain_gated ~sp_gated:0.05 () in
  let timing = Sta.fresh_timing ~clock_tree:tree c28 in
  let r = Sta.analyze ~timing ~clock_period_ps:1e9 alu8.Lift.netlist in
  List.fold_left
    (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
    0.0 r.Sta.endpoint_slacks

let small_suite =
  let r =
    Lift.lift_pair alu8 ~start_dff:"a_q0" ~end_dff:"r_q0" ~violation:Fault.Setup_violation
  in
  Lift.suite_of_results alu8.Lift.kind [ r ]

let alu8_machine nl =
  Machine.create
    ~config:{ Machine.default_config with Machine.width = 8; fmt = Fpu_format.tiny }
    ~alu:(Machine.Alu_netlist nl) ~fpu:Machine.Fpu_functional ()

let faulty_alu8 =
  Fault.failing_netlist alu8.Lift.netlist
    {
      Fault.start_dff = "a_q0";
      end_dff = "r_q0";
      kind = Fault.Setup_violation;
      constant = Fault.C0;
      activation = Fault.Any_transition;
    }

let example_adder = Example_circuits.pipelined_adder ()

let example_instrumented =
  Fault.instrument_shadow example_adder
    {
      Fault.start_dff = "$4";
      end_dff = "$10";
      kind = Fault.Setup_violation;
      constant = Fault.C1;
      activation = Fault.Any_transition;
    }

let crc_compiled = Minic.compile (Workload.find "crc").Workload.program
let functional16 () = Machine.create ~alu:Machine.Alu_functional ~fpu:Machine.Fpu_functional ()
let crc_profile = Integrate.profile (functional16 ()) crc_compiled

let pigeonhole n holes =
  let s = Sat.create () in
  let x = Array.init n (fun _ -> Array.init holes (fun _ -> Sat.new_var s)) in
  for p = 0 to n - 1 do
    Sat.add_clause s (Array.to_list x.(p))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to n - 1 do
      for p2 = p1 + 1 to n - 1 do
        Sat.add_clause s [ -x.(p1).(h); -x.(p2).(h) ]
      done
    done
  done;
  s

(* ------------- micro-benchmarks: one Test.make per table/figure ------------- *)

let micro_tests =
  let t name f = Test.make ~name (Staged.stage f) in
  Test.make_grouped ~name:"vega" ~fmt:"%s/%s"
    [
      t "fig4:aging-timing-library-build" (fun () ->
          ignore (Aging.Timing_library.build c28));
      t "table1:sp-profile-200-cycles" (fun () ->
          let sim = Sim.create ~profile:true example_adder in
          Sim.run_random sim ~cycles:200;
          ignore (Sim.sp_of_cell sim "$7"));
      t "table2:bmc-trace-example-adder" (fun () ->
          match
            Formal.check_cover example_instrumented.Fault.netlist
              ~cover:example_instrumented.Fault.cover
          with
          | Formal.Trace_found _ -> ()
          | _ -> failwith "no trace");
      t "fig8:aged-delay-factors-alu8" (fun () ->
          Array.iter
            (fun (c : Netlist.cell) ->
              if not (Cell.Kind.is_sequential c.Netlist.kind) && Cell.Kind.arity c.Netlist.kind > 0
              then ignore (Aging.Timing_library.factor aglib c.Netlist.kind ~sp:0.3 ~years:10.0))
            (Netlist.cells alu8.Lift.netlist));
      t "table3:aged-sta-alu8" (fun () ->
          ignore
            (Sta.analyze ~timing:aged_timing_alu8
               ~clock_period_ps:(alu8_fresh_crit *. 1.005)
               alu8.Lift.netlist));
      t "table3:violating-pairs-alu8" (fun () ->
          ignore
            (Sta.violating_pairs ~timing:aged_timing_alu8
               ~clock_period_ps:(alu8_fresh_crit *. 1.005)
               alu8.Lift.netlist));
      t "table4:lift-pair-alu8" (fun () ->
          ignore
            (Lift.lift_pair alu8 ~start_dff:"a_q0" ~end_dff:"r_q0"
               ~violation:Fault.Setup_violation));
      t "table5:suite-execution-healthy" (fun () ->
          let m = alu8_machine alu8.Lift.netlist in
          Machine.reset m;
          ignore (Machine.run m (Lift.suite_program small_suite)));
      t "table6:detection-run-failing-netlist" (fun () ->
          let m = alu8_machine faulty_alu8 in
          Machine.reset m;
          ignore (Machine.run m (Lift.suite_program small_suite)));
      t "table7:random-suite-generation" (fun () ->
          ignore (Testgen.random_alu_suite ~seed:1 ~width:8 ~cases:8 ()));
      t "fig9:profile-plan-instrument-crc" (fun () ->
          let plan =
            Integrate.plan_integration ~compiled:crc_compiled ~profile:crc_profile
              ~suite:small_suite ()
          in
          ignore (Integrate.instrument ~compiled:crc_compiled ~suite:small_suite ~plan));
      t "substrate:gate-sim-step-fpu16" (fun () ->
          let sim = Sim.create fpu16_netlist in
          for _ = 1 to 10 do
            Sim.step sim
          done);
      t "substrate:gate-sim64-step-fpu16" (fun () ->
          let sim = Sim64.create fpu16_netlist in
          for _ = 1 to 10 do
            Sim64.step sim
          done);
      t "substrate:gate-simc-step-fpu16" (fun () ->
          let sim = Simc.create fpu16_netlist in
          for _ = 1 to 10 do
            Simc.step sim
          done;
          Simc.settle sim);
      t "substrate:cdcl-pigeonhole-7-6" (fun () ->
          ignore (Sat.solve (pigeonhole 7 6)));
      t "substrate:minic-compile-minver" (fun () ->
          ignore (Minic.compile Workload.minver.Workload.program));
    ]

(* Throughput of the word-parallel engines against the scalar reference on
   the same netlist and the same pre-generated random stimulus: one scalar
   pattern per cycle vs [Sim64.lanes] patterns per cycle on the
   interpreted (Sim64) and compiled (Simc) engines.  The compiled engine's
   one-time translation cost is timed separately and recorded alongside
   the steady-state rates in BENCH_simc.json. *)
let engine_throughput () =
  print_endline "== scalar vs Sim64 vs Simc gate-simulation throughput ==";
  let measure name nl ~cycles =
    let in_ports = Netlist.inputs nl in
    let rng = Random.State.make [| 0x5eed; Hashtbl.hash name |] in
    let stim64 =
      Array.init cycles (fun _ ->
          List.map
            (fun (p : Netlist.port) ->
              ( p.Netlist.port_name,
                Array.init (Array.length p.Netlist.port_nets) (fun _ -> Sim64.random_word rng)
              ))
            in_ports)
    in
    (* the scalar run replays lane 0 of the same stimulus *)
    let stim1 =
      Array.map
        (fun assigns ->
          List.map
            (fun (pname, words) ->
              let v = ref 0 in
              Array.iteri (fun i w -> if w land 1 <> 0 then v := !v lor (1 lsl i)) words;
              (pname, Bitvec.create ~width:(Array.length words) !v))
            assigns)
        stim64
    in
    let sim = Sim.create nl in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun assigns ->
        List.iter (fun (p, v) -> Sim.set_input sim p v) assigns;
        Sim.step sim)
      stim1;
    let t1 = Unix.gettimeofday () in
    let s64 = Sim64.create nl in
    Array.iter
      (fun assigns ->
        List.iter (fun (p, ws) -> Sim64.set_input_words s64 p ws) assigns;
        Sim64.step s64)
      stim64;
    let t2 = Unix.gettimeofday () in
    let sc = Simc.create nl in
    let t3 = Unix.gettimeofday () in
    Array.iter
      (fun assigns ->
        List.iter (fun (p, ws) -> Simc.set_input_words sc p ws) assigns;
        Simc.step sc)
      stim64;
    (* flush the lazy post-edge settle so the timed region covers the same
       work the interpreted engines already did *)
    Simc.settle sc;
    let t4 = Unix.gettimeofday () in
    let scalar_rate = float_of_int cycles /. (t1 -. t0) in
    let sim64_rate = float_of_int (cycles * Sim64.lanes) /. (t2 -. t1) in
    let simc_rate = float_of_int (cycles * Simc.lanes) /. (t4 -. t3) in
    let compile_ms = (t3 -. t2) *. 1e3 in
    Printf.printf
      "  %-6s scalar %9.0f/s | sim64 %10.0f/s (%5.1fx) | simc %11.0f/s (%5.1fx, %5.1fx vs \
       sim64, compile %.2f ms, %d ops)\n"
      name scalar_rate sim64_rate (sim64_rate /. scalar_rate) simc_rate
      (simc_rate /. scalar_rate) (simc_rate /. sim64_rate) compile_ms (Simc.program_length sc);
    Json.Obj
      [
        ("name", Json.String name);
        ("cycles", Json.Int cycles);
        ("scalar_patterns_per_s", Json.Float scalar_rate);
        ("sim64_patterns_per_s", Json.Float sim64_rate);
        ("simc_patterns_per_s", Json.Float simc_rate);
        ("simc_compile_ms", Json.Float compile_ms);
        ("simc_program_ops", Json.Int (Simc.program_length sc));
        ("simc_vs_scalar", Json.Float (simc_rate /. scalar_rate));
        ("simc_vs_sim64", Json.Float (simc_rate /. sim64_rate));
      ]
  in
  let rows =
    [ measure "alu8" alu8.Lift.netlist ~cycles:2000; measure "fpu16" fpu16_netlist ~cycles:500 ]
  in
  let json =
    Json.Obj
      [
        ("schema", Json.String "vega-bench-simc/1");
        ("lanes", Json.Int Simc.lanes);
        ("netlists", Json.List rows);
      ]
  in
  let oc = open_out "BENCH_simc.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  print_endline "engine comparison written to BENCH_simc.json";
  print_newline ()

let run_micro () =
  engine_throughput ();
  print_endline "== Bechamel micro-benchmarks (one per table/figure kernel) ==";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] micro_tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some [ est ] ->
        if est > 1e6 then Printf.printf "  %-48s %10.2f ms/run\n" name (est /. 1e6)
        else Printf.printf "  %-48s %10.1f ns/run\n" name est
      | _ -> Printf.printf "  %-48s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()

(* ------------- ablation studies ------------- *)

let ablation_bmc_budget () =
  print_endline "== Ablation: formal conflict budget vs construction outcome ==";
  print_endline "   (DESIGN.md: 'FF timeouts emerge at small bounds')";
  List.iter
    (fun budget ->
      let config = { Lift.default_config with Lift.max_conflicts = budget } in
      let fpu = Lift.fpu_target () in
      let r =
        Lift.lift_pair ~config fpu ~start_dff:"b_q0" ~end_dff:"r_q0"
          ~violation:Fault.Setup_violation
      in
      Printf.printf "  budget %7d conflicts -> %s (%d cases)\n" budget
        (Lift.classification_name r.Lift.classification)
        (List.length r.Lift.cases))
    [ 0; 2; 20; 200; 200_000 ];
  print_newline ()

let ablation_integration_threshold () =
  print_endline "== Ablation: overhead threshold vs integration plan (crc) ==";
  List.iter
    (fun threshold ->
      let plan =
        Integrate.plan_integration ~overhead_threshold:threshold ~compiled:crc_compiled
          ~profile:crc_profile ~suite:small_suite ()
      in
      Printf.printf "  threshold %6.3f%% -> block %-12s count %5d gate %-6s est %.4f%%\n"
        (100.0 *. threshold) plan.Integrate.chosen_block plan.Integrate.block_count
        (match plan.Integrate.gate with None -> "-" | Some k -> Printf.sprintf "1/%d" k)
        (100.0 *. plan.Integrate.estimated_overhead))
    [ 0.0005; 0.002; 0.01; 0.05 ];
  print_newline ()

let ablation_corner_conservatism () =
  print_endline "== Ablation: analysis-corner pessimism vs flagged pairs (ALU8) ==";
  print_endline
    "   (the clock is signed off at the nominal corner; extra derate on the";
  print_endline "    aging analysis models worst-case voltage/temperature assumptions)";
  List.iter
    (fun derate ->
      let tree = Clock_tree.two_domain_gated ~sp_gated:0.05 () in
      let aged =
        Sta.aged_timing ~derate ~clock_tree:tree ~sp_of_net:(fun _ -> 0.3) ~years:10.0 aglib
      in
      let pairs =
        Sta.violating_pairs ~timing:aged
          ~clock_period_ps:(alu8_fresh_crit *. 1.005)
          alu8.Lift.netlist
      in
      Printf.printf "  analysis derate %.2f -> %d flagged pairs\n" derate (List.length pairs))
    [ 1.0; 1.01; 1.02; 1.05 ];
  print_newline ()

let ablation_clock_margin () =
  print_endline "== Ablation: clock-frequency guardband vs aging exposure (ALU8) ==";
  List.iter
    (fun margin ->
      let pairs =
        Sta.violating_pairs ~timing:aged_timing_alu8
          ~clock_period_ps:(alu8_fresh_crit *. margin)
          alu8.Lift.netlist
      in
      Printf.printf "  margin %.3f -> %d violating pairs\n" margin (List.length pairs))
    [ 1.0; 1.01; 1.02; 1.04; 1.06 ];
  print_newline ()

let ablation_formal_vs_fuzz () =
  print_endline "== Ablation: formal vs fuzzing-based trace generation (paper 6.3) ==";
  let pairs =
    [ ("a_q0", "r_q0"); ("b_q1", "r_q2"); ("b_q0", "r_q7") ]
  in
  List.iter
    (fun (s, e) ->
      let t0 = Unix.gettimeofday () in
      let formal =
        Lift.lift_pair alu8 ~start_dff:s ~end_dff:e ~violation:Fault.Setup_violation
      in
      let t1 = Unix.gettimeofday () in
      let fuzzed =
        Lift.fuzz_pair alu8 ~start_dff:s ~end_dff:e ~violation:Fault.Setup_violation
      in
      let t2 = Unix.gettimeofday () in
      let steps (r : Lift.pair_result) =
        match r.Lift.cases with [] -> 0 | tc :: _ -> Lift.steps tc
      in
      Printf.printf
        "  %s~>%s  formal: %s %d-op case in %4.0f ms | fuzz: %s %d-op case in %4.0f ms\n" s e
        (Lift.classification_name formal.Lift.classification)
        (steps formal)
        (1000.0 *. (t1 -. t0))
        (Lift.classification_name fuzzed.Lift.classification)
        (steps fuzzed)
        (1000.0 *. (t2 -. t1)))
    pairs;
  print_newline ()

let ablation_bti_vs_em () =
  print_endline "== Ablation: BTI-only vs BTI+EM aging analysis (ALU8, paper 6.3) ==";
  (* profile SPs and toggle rates with the mixed workload *)
  let m =
    Machine.create
      ~config:{ Machine.default_config with Machine.width = 8; fmt = Fpu_format.tiny }
      ~profile_units:true ~alu:(Machine.Alu_netlist alu8.Lift.netlist)
      ~fpu:Machine.Fpu_functional ()
  in
  Vega.run_minver_workload m;
  let sim = Option.get (Machine.alu_sim m) in
  let sp_of_net n = Sim.sp sim n in
  let toggle_of_net n = Sim.toggle_rate sim n in
  let tree = Clock_tree.two_domain_gated ~sp_gated:0.05 () in
  let period = alu8_fresh_crit *. 1.005 in
  let measure timing =
    let pairs = Sta.violating_pairs ~timing ~clock_period_ps:period alu8.Lift.netlist in
    let r = Sta.analyze ~max_violating_paths:1 ~timing ~clock_period_ps:period alu8.Lift.netlist in
    (List.length pairs, r.Sta.wns_setup_ps)
  in
  let bti_n, bti_wns = measure (Sta.aged_timing ~clock_tree:tree ~sp_of_net ~years:10.0 aglib) in
  let em_n, em_wns =
    measure (Sta.aged_timing ~clock_tree:tree ~toggle_of_net ~sp_of_net ~years:10.0 aglib)
  in
  Printf.printf "  BTI only:  %d violating pairs, setup WNS %.1f ps\n" bti_n bti_wns;
  Printf.printf "  BTI + EM:  %d violating pairs, setup WNS %.1f ps\n" em_n em_wns;
  Printf.printf "  (EM derates the busiest nets: WNS degrades by %.1f ps here)\n"
    (bti_wns -. em_wns);
  print_newline ()

let ablation_adder_architecture () =
  print_endline "== Ablation: adder architecture vs aging exposure (ALU8) ==";
  List.iter
    (fun (name, style) ->
      let nl = Alu.netlist ~width:8 ~adder:style () in
      let tree = Clock_tree.two_domain_gated ~sp_gated:0.05 () in
      let fresh = Sta.fresh_timing ~clock_tree:tree c28 in
      let probe = Sta.analyze ~timing:fresh ~clock_period_ps:1e9 nl in
      let crit =
        List.fold_left
          (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
          0.0 probe.Sta.endpoint_slacks
      in
      let aged = Sta.aged_timing ~clock_tree:tree ~sp_of_net:(fun _ -> 0.3) ~years:10.0 aglib in
      let pairs = Sta.violating_pairs ~timing:aged ~clock_period_ps:(crit *. 1.005) nl in
      Printf.printf "  %-13s %5d cells, fresh critical %6.0f ps, %d aging-prone pairs\n" name
        (Netlist.num_cells nl) crit (List.length pairs))
    [ ("ripple", Alu.Ripple); ("carry-select", Alu.Carry_select) ];
  print_endline "   (formally equivalent designs, different aging surfaces)";
  print_newline ()

let run_ablations () =
  ablation_bmc_budget ();
  ablation_formal_vs_fuzz ();
  ablation_bti_vs_em ();
  ablation_adder_architecture ();
  ablation_integration_threshold ();
  ablation_corner_conservatism ();
  ablation_clock_margin ()

(* ------------- static-check benchmarks: CEC vs random vectors ------------- *)

(* Drive two netlists with identical random stimulus across all Sim64 lanes
   and report the first cycle with an output mismatch, if any. *)
let random_equiv ?(seed = 0xbec5) ~cycles a_nl b_nl =
  let sa = Sim64.create a_nl and sb = Sim64.create b_nl in
  Sim64.reset sa;
  Sim64.reset sb;
  let rng = Random.State.make [| seed |] in
  let mismatch = ref None in
  (try
     for c = 0 to cycles - 1 do
       List.iter
         (fun (p : Netlist.port) ->
           let words =
             Array.init (Array.length p.Netlist.port_nets) (fun _ -> Sim64.random_word rng)
           in
           Sim64.set_input_words sa p.Netlist.port_name words;
           Sim64.set_input_words sb p.Netlist.port_name words)
         (Netlist.inputs a_nl);
       Sim64.settle sa;
       Sim64.settle sb;
       List.iter
         (fun (p : Netlist.port) ->
           if Sim64.output_words sa p.Netlist.port_name <> Sim64.output_words sb p.Netlist.port_name
           then begin
             mismatch := Some c;
             raise Exit
           end)
         (Netlist.outputs a_nl);
       Sim64.step sa;
       Sim64.step sb
     done
   with Exit -> ());
  !mismatch

let run_check_bench () =
  print_endline "== static-verification benchmarks: CEC vs random-vector validation ==\n";
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let row label detail ms = Printf.printf "  %-34s %-38s %8.2f ms\n" label detail ms in
  let units = [ ("alu8", alu8.Lift.netlist); ("fpu16", fpu16_netlist) ] in
  List.iter
    (fun (uname, nl) ->
      let opt, _ = Netlist_opt.optimize nl in
      let v, ms = timed (fun () -> Cec.check nl opt) in
      row
        (Printf.sprintf "cec %s vs optimized" uname)
        (match v with
        | Cec.Equivalent -> "proven equivalent"
        | Cec.Inequivalent _ -> "INEQUIVALENT (bug!)"
        | Cec.Unknown -> "unknown")
        ms;
      let mutant, desc = Check.mutate ~seed:1 nl in
      let v, ms = timed (fun () -> Cec.check nl mutant) in
      row
        (Printf.sprintf "cec %s vs mutated" uname)
        (match v with
        | Cec.Inequivalent _ -> Printf.sprintf "caught: %s" desc
        | Cec.Equivalent -> "MISSED (bug!)"
        | Cec.Unknown -> "unknown")
        ms;
      let cycles = 2000 in
      let m, ms = timed (fun () -> random_equiv ~cycles nl opt) in
      row
        (Printf.sprintf "sim64 %s vs optimized" uname)
        (match m with
        | None -> Printf.sprintf "%d cycles x 64 lanes clean (no proof)" cycles
        | Some c -> Printf.sprintf "MISMATCH at cycle %d (bug!)" c)
        ms;
      let m, ms = timed (fun () -> random_equiv ~cycles nl mutant) in
      row
        (Printf.sprintf "sim64 %s vs mutated" uname)
        (match m with
        | Some c -> Printf.sprintf "caught at cycle %d" c
        | None -> Printf.sprintf "undetected in %d cycles" cycles)
        ms)
    units;
  let v, ms =
    timed (fun () ->
        Cec.check ~free_inputs:true ~tie_low:(Fault.select_cells faulty_alu8) alu8.Lift.netlist
          faulty_alu8)
  in
  row "cec alu8 vs fault-tied-inert"
    (match v with
    | Cec.Equivalent -> "proven equivalent (instrumentation inert)"
    | Cec.Inequivalent _ -> "INEQUIVALENT (bug!)"
    | Cec.Unknown -> "unknown")
    ms

(* ------------- resilience-supervisor benchmarks ------------- *)

(* Per-pair cost of the two ladder rungs on the same work: a full formal
   lifting attempt vs one seeded random-suite fallback probe against the
   pair's failing netlist, then a whole supervised sweep with a starvation
   slice to show the budget/ladder machinery end to end. *)
let run_resilience_bench () =
  print_endline "== resilience: formal lifting vs random-search fallback, per pair ==\n";
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let pairs = [ ("a_q0", "r_q0"); ("b_q1", "r_q2"); ("b_q0", "r_q7") ] in
  List.iter
    (fun (s, e) ->
      let (formal, stats), f_ms =
        timed (fun () ->
            Lift.lift_pair_stats alu8 ~start_dff:s ~end_dff:e
              ~violation:Fault.Setup_violation)
      in
      let spec =
        {
          Fault.start_dff = s;
          end_dff = e;
          kind = Fault.Setup_violation;
          constant = Fault.C0;
          activation = Fault.Any_transition;
        }
      in
      let faulty = Fault.failing_netlist alu8.Lift.netlist spec in
      let hits, r_ms =
        timed (fun () ->
            let suite = Testgen.random_alu_suite ~seed:7 ~width:8 ~cases:32 () in
            Array.fold_left
              (fun n hit -> if hit then n + 1 else n)
              0
              (Lift.detected_cases ~seed:7 suite faulty))
      in
      Printf.printf
        "  %s~>%s  formal %-13s %7d conflicts %7.1f ms | fallback 32 cases %2d hits %7.1f ms\n"
        s e
        (Lift.classification_name formal.Lift.classification)
        stats.Lift.p_conflicts f_ms hits r_ms)
    pairs;
  print_newline ();
  print_endline "== resilience: supervised ALU8 sweep, starvation-level 2-conflict slice ==\n";
  let config = { Lift.default_config with Lift.max_conflicts = 2 } in
  let analysis =
    Vega.aging_analysis
      ~config:{ Vega.default_phase1 with Vega.clock_margin = 1.0 }
      alu8 ~workload:Vega.run_minver_workload
  in
  let items = Vega.lifting_items analysis in
  let report, ms =
    timed (fun () -> Vega.error_lifting_supervised ~config analysis)
  in
  print_string (Resilience.render_report report);
  Printf.printf "  %d items supervised in %.0f ms\n" (List.length items) ms;
  print_newline ()

(* ------------- telemetry mode ------------- *)

(* One instrumented end-to-end ALU8 pipeline (phase 1 + supervised phase 2 +
   a word-parallel profiling run), drained into BENCH_telemetry.json.  The
   counters are deterministic for a fixed seed — they are the perf-trajectory
   signal; the span durations carry the wall-clock context. *)
let run_telemetry () =
  Telemetry.enable ();
  let analysis =
    Vega.aging_analysis
      ~config:{ Vega.default_phase1 with Vega.clock_margin = 1.0 }
      alu8 ~workload:Vega.run_minver_workload
  in
  let rp = Vega.error_lifting_supervised analysis in
  let s64 = Sim64.create ~profile:true alu8.Lift.netlist in
  Sim64.run_random s64 ~cycles:256;
  let snap = Telemetry.snapshot () in
  Telemetry.disable ();
  let json =
    Json.Obj
      [
        ("schema", Json.String "vega-bench-telemetry/1");
        ( "counters",
          Json.Obj
            (List.map
               (fun (c : Telemetry.Counter.snapshot) ->
                 (c.Telemetry.Counter.c_name, Json.Int c.Telemetry.Counter.c_value))
               snap.Telemetry.ss_counters) );
        ( "histograms",
          Json.List
            (List.map
               (fun (h : Telemetry.Histogram.snapshot) ->
                 Json.Obj
                   [
                     ("name", Json.String h.Telemetry.Histogram.h_name);
                     ( "counts",
                       Json.List
                         (Array.to_list
                            (Array.map (fun n -> Json.Int n) h.Telemetry.Histogram.h_counts))
                     );
                     ("total", Json.Int h.Telemetry.Histogram.h_total);
                     ("sum", Json.Int h.Telemetry.Histogram.h_sum);
                   ])
               snap.Telemetry.ss_histograms) );
        ( "span_totals",
          Json.List
            (List.map
               (fun (name, count, total_ns) ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ("count", Json.Int count);
                     ("total_ns", Json.Int total_ns);
                   ])
               (Telemetry.span_totals snap)) );
      ]
  in
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  print_string (Telemetry.Export.summary snap);
  Printf.printf "supervised items: %d, budget spent: %d conflicts\n"
    (List.length rp.Resilience.rp_items)
    rp.Resilience.rp_budget_spent;
  print_endline "telemetry written to BENCH_telemetry.json"

(* ------------- fleet mode ------------- *)

(* Multicore scaling of the fleet pool: the quick campaign at 1, 2 and 4
   worker domains, wall-clock per configuration, plus the cross-domain
   byte-identity check the whole engine is built around.  The speedups
   are honest measurements of THIS machine — on a single hardware core
   (the CI container) they hover around 1.0x; the >1.5x acceptance
   number needs real cores. *)
let run_fleet () =
  let config = Experiments.quick_fleet in
  let time_at domains =
    let t0 = Unix.gettimeofday () in
    let report = Experiments.fleet_campaign ~config ~domains () in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    (Experiments.render_fleet report, report, ms)
  in
  let out1, report, ms1 = time_at 1 in
  let out2, _, ms2 = time_at 2 in
  let out4, _, ms4 = time_at 4 in
  let identical = String.equal out1 out2 && String.equal out1 out4 in
  let violated, escaped, quarantined =
    List.fold_left
      (fun (v, e, q) (_, r) ->
        match r with
        | Error _ -> (v, e, q + 1)
        | Ok row ->
          ( (v + if row.Experiments.dv_onset_idx <> None then 1 else 0),
            (e + if row.Experiments.dv_escape then 1 else 0),
            q ))
      (0, 0, 0) report.Experiments.fe_results
  in
  let json =
    Json.Obj
      [
        ("schema", Json.String "vega-bench-fleet/1");
        ("devices", Json.Int config.Experiments.fd_devices);
        ("suite_cases", Json.Int report.Experiments.fe_suite_cases);
        ("violated", Json.Int violated);
        ("escaped", Json.Int escaped);
        ("quarantined", Json.Int quarantined);
        ("ms_1", Json.Float ms1);
        ("ms_2", Json.Float ms2);
        ("ms_4", Json.Float ms4);
        ("speedup_2", Json.Float (ms1 /. ms2));
        ("speedup_4", Json.Float (ms1 /. ms4));
        ("identical", Json.Bool identical);
      ]
  in
  let oc = open_out "BENCH_fleet.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "fleet pool scaling (%d devices, quick campaign):\n" config.Experiments.fd_devices;
  Printf.printf "  1 domain : %8.1f ms\n" ms1;
  Printf.printf "  2 domains: %8.1f ms (%.2fx)\n" ms2 (ms1 /. ms2);
  Printf.printf "  4 domains: %8.1f ms (%.2fx)\n" ms4 (ms1 /. ms4);
  Printf.printf "  outputs byte-identical across domain counts: %b\n" identical;
  if not identical then exit 1;
  print_endline "fleet scaling written to BENCH_fleet.json"

(* ------------- repair mode ------------- *)

(* Aging-aware repair on the ALU8 sweep: wall-clock of the full
   analyze-repair-rescore pipeline, recovered slack and the proof
   counters, written to BENCH_repair.json. *)
let run_repair () =
  let target = Lift.alu_target ~width:8 () in
  let t0 = Unix.gettimeofday () in
  let report = Vega.repair target ~workload:Vega.run_minver_workload in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let r = report.Vega.rr_result in
  let recovered =
    List.fold_left
      (fun acc (o : Repair.pair_outcome) ->
        if o.Repair.po_slack_before_ps < 0.0 then
          acc
          +. (Float.min o.Repair.po_slack_after_ps 0.0 -. o.Repair.po_slack_before_ps)
        else acc)
      0.0 r.Repair.rs_outcomes
  in
  let per_rung rung =
    List.length (List.filter (fun c -> c.Repair.cm_rung = rung) r.Repair.rs_ledger)
  in
  let sb, cb, ub = report.Vega.rr_verdicts_before in
  let sa, ca, ua = report.Vega.rr_verdicts_after in
  let json =
    Json.Obj
      [
        ("schema", Json.String "vega-bench-repair/1");
        ("unit", Json.String "alu8");
        ("violating_before", Json.Int report.Vega.rr_violating_before);
        ("violating_after", Json.Int report.Vega.rr_violating_after);
        ("critical_before", Json.Int cb);
        ("critical_after", Json.Int ca);
        ("safe_before", Json.Int sb);
        ("safe_after", Json.Int sa);
        ("unknown_before", Json.Int ub);
        ("unknown_after", Json.Int ua);
        ("rewrites", Json.Int r.Repair.rs_rewrites);
        ("rewrites_strengthen", Json.Int (per_rung Repair.Strengthen));
        ("rewrites_dup_vote", Json.Int (per_rung Repair.Dup_vote));
        ("rewrites_rebalance", Json.Int (per_rung Repair.Rebalance));
        ("rewrites_approx", Json.Int (per_rung Repair.Approx));
        ("rejected", Json.Int r.Repair.rs_rejected);
        ("cec_failures", Json.Int r.Repair.rs_cec_failures);
        ("recovered_slack_ps", Json.Float recovered);
        ("cells_before", Json.Int r.Repair.rs_cells_before);
        ("cells_after", Json.Int r.Repair.rs_cells_after);
        ("area_before_um2", Json.Float r.Repair.rs_area_before_um2);
        ("area_after_um2", Json.Float r.Repair.rs_area_after_um2);
        ("ms", Json.Float ms);
      ]
  in
  let oc = open_out "BENCH_repair.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  print_string (Vega.render_repair report);
  Printf.printf "repair wall-clock: %.1f ms\n" ms;
  print_endline "repair results written to BENCH_repair.json"

(* ------------- experiment printing ------------- *)

let log s = Printf.eprintf "[bench] %s\n%!" s

let print_tables config =
  print_endline "== Paper tables and figures (see EXPERIMENTS.md for comparison) ==\n";
  print_string (Experiments.run_all ~config ~log ())

let with_context config f =
  let ctx = Experiments.make_context ~config ~log () in
  f ctx

let print_guard_campaign quick =
  let config =
    if quick then Experiments.quick_campaign else Experiments.default_campaign
  in
  print_string (Experiments.render_campaign (Experiments.campaign ~config ~log ()))

(* ------------- attack mode ------------- *)

(* The adversarial wearout campaign distilled to its headline numbers: the
   time-to-violation acceleration factor of the attack stream, and the
   detection latency of the canary channel against the software-only
   guard.  The campaign itself is deterministic for the fixed quick
   configuration; the wall clock carries the perf-trajectory context. *)
let run_attack_bench () =
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let config = Experiments.quick_attack_campaign in
  let report, ms = timed (fun () -> Experiments.attack_campaign ~config ~log ()) in
  print_string
    (Experiments.render_attack_campaign ~years_max:config.Experiments.ak_years_max report);
  let s = Experiments.attack_summary report.Experiments.ap_rows in
  let latency_of mode =
    List.fold_left
      (fun acc (r : Experiments.attack_row) ->
        match (acc, r.Experiments.ar_latency) with
        | None, Some (i, _) when r.Experiments.ar_mode = mode -> Some i
        | _ -> acc)
      None report.Experiments.ap_rows
  in
  let fopt = function None -> Json.Null | Some f -> Json.Float f in
  let iopt = function None -> Json.Null | Some i -> Json.Int i in
  let json =
    Json.Obj
      [
        ("schema", Json.String "vega-bench-attack/1");
        ("width", Json.Int config.Experiments.ak_width);
        ("target_cells", Json.Int (List.length report.Experiments.ap_cells));
        ("baseline_duty", Json.Float report.Experiments.ap_baseline_obj);
        ("attacked_duty", Json.Float report.Experiments.ap_attacked_obj);
        ("search_evals", Json.Int report.Experiments.ap_evals);
        ("sat_patterns", Json.Int report.Experiments.ap_sat_patterns);
        ("fresh_crit_ps", Json.Float report.Experiments.ap_fresh_crit_ps);
        ("clock_period_ps", Json.Float report.Experiments.ap_clock_period_ps);
        ("ttv_nominal_years", fopt report.Experiments.ap_ttv_nominal);
        ("ttv_attack_years", fopt report.Experiments.ap_ttv_attack);
        ("acceleration", fopt report.Experiments.ap_acceleration);
        ("canaries", Json.Int (List.length report.Experiments.ap_canaries));
        ("canary_latency_instrs", iopt (latency_of "sw+canary"));
        ("sw_latency_instrs", iopt (latency_of "sw-only"));
        ("canary_first", Json.Int s.Experiments.as_canary_first);
        ("canary_wins", Json.Int s.Experiments.as_canary_wins);
        ("latency_pairs", Json.Int s.Experiments.as_latency_pairs);
        ( "guarded_escapes",
          Json.Int (s.Experiments.as_sw_escapes + s.Experiments.as_canary_escapes) );
        ("rows", Json.Int (List.length report.Experiments.ap_rows));
        ("wall_ms", Json.Float ms);
      ]
  in
  let oc = open_out "BENCH_attack.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "attack campaign: %.0f ms; results written to BENCH_attack.json\n" ms

(* Static-triage benchmark: how much of the phase-1 pair sweep does the
   Spbound analysis prune, and what does the pruned sweep cost?  The pair
   sweep runs [reps] times per corner so the wall-clock ratio is stable;
   verdict equality (pruned sweep = unpruned sweep, element for element)
   is asserted and recorded. *)
let run_analyze_bench () =
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let tree = Clock_tree.two_domain_gated ~sp_gated:0.05 () in
  let measure name nl ~reps =
    let fresh = Sta.fresh_timing ~clock_tree:tree c28 in
    let probe = Sta.analyze ~timing:fresh ~clock_period_ps:1e9 nl in
    let crit =
      List.fold_left
        (fun acc (e : Sta.endpoint_slack) -> Float.max acc (1e9 -. e.Sta.setup_slack_ps))
        0.0 probe.Sta.endpoint_slacks
    in
    let clock_period_ps = crit *. 1.005 in
    let sb, spbound_ms = timed (fun () -> Spbound.analyze nl) in
    let pvs, classify_ms =
      timed (fun () -> Spbound.classify ~clock_tree:tree ~aglib ~years:10.0 ~clock_period_ps sb)
    in
    let safe_set = Hashtbl.create 256 in
    List.iter
      (fun (pv : Spbound.pair_verdict) ->
        if pv.Spbound.pv_verdict = Spbound.Safe then
          Hashtbl.replace safe_set (pv.Spbound.pv_start, pv.Spbound.pv_end, pv.Spbound.pv_check) ())
      pvs;
    let aged =
      Sta.aged_timing ~clock_tree:tree ~sp_of_net:(fun _ -> 0.3) ~years:10.0 aglib
    in
    let sweep ?skip () =
      let r = ref [] in
      for _ = 1 to reps do
        r := Sta.violating_pairs ?skip ~timing:aged ~clock_period_ps nl
      done;
      !r
    in
    let unpruned, unpruned_ms = timed (fun () -> sweep ()) in
    let pruned, pruned_ms =
      timed (fun () -> sweep ~skip:(fun s e c -> Hashtbl.mem safe_set (s, e, c)) ())
    in
    let equal = pruned = unpruned in
    let safe, critical, unknown = Spbound.verdict_counts pvs in
    let total = safe + critical + unknown in
    let prune_rate = float_of_int safe /. float_of_int (max total 1) in
    Printf.printf
      "%-6s pairs %4d: %4d safe / %3d critical / %3d unknown (%.1f%% pruned)\n" name total safe
      critical unknown (100.0 *. prune_rate);
    Printf.printf
      "       spbound %.1f ms, classify %.1f ms; sweep x%d: %.1f ms -> %.1f ms (%.2fx), \
       verdicts %s\n"
      spbound_ms classify_ms reps unpruned_ms pruned_ms
      (unpruned_ms /. Float.max pruned_ms 1e-6)
      (if equal then "identical" else "DIFFER");
    Json.Obj
      [
        ("name", Json.String name);
        ("pairs", Json.Int total);
        ("safe", Json.Int safe);
        ("critical", Json.Int critical);
        ("unknown", Json.Int unknown);
        ("prune_rate", Json.Float prune_rate);
        ("spbound_ms", Json.Float spbound_ms);
        ("classify_ms", Json.Float classify_ms);
        ("sweep_reps", Json.Int reps);
        ("sweep_unpruned_ms", Json.Float unpruned_ms);
        ("sweep_pruned_ms", Json.Float pruned_ms);
        ("speedup", Json.Float (unpruned_ms /. Float.max pruned_ms 1e-6));
        ("violating", Json.Int (List.length unpruned));
        ("verdicts_equal", Json.Bool equal);
      ]
  in
  print_endline "== static triage (Spbound) prune rate and sweep speedup ==";
  let row_alu = measure "alu8" alu8.Lift.netlist ~reps:40 in
  let row_fpu = measure "fpu16" fpu16_netlist ~reps:10 in
  let rows = [ row_alu; row_fpu ] in
  let json =
    Json.Obj [ ("schema", Json.String "vega-bench-analyze/1"); ("netlists", Json.List rows) ]
  in
  let oc = open_out "BENCH_analyze.json" in
  output_string oc (Json.to_string ~pretty:true json);
  output_string oc "\n";
  close_out oc;
  print_endline "static triage results written to BENCH_analyze.json"

let () =
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let config =
    if Array.exists (String.equal "quick") Sys.argv then Experiments.quick_config
    else Experiments.default_config
  in
  match arg with
  | "all" | "quick" ->
    print_tables config;
    print_guard_campaign (arg = "quick");
    run_micro ();
    run_ablations ()
  | "guard" -> print_guard_campaign (Array.exists (String.equal "quick") Sys.argv)
  | "analyze" -> run_analyze_bench ()
  | "attack" -> run_attack_bench ()
  | "check" -> run_check_bench ()
  | "resilience" -> run_resilience_bench ()
  | "telemetry" -> run_telemetry ()
  | "fleet" -> run_fleet ()
  | "repair" -> run_repair ()
  | "micro" -> run_micro ()
  | "ablations" -> run_ablations ()
  | "fig4" -> print_string (Experiments.render_fig4 (Experiments.fig4 ()))
  | "table1" -> print_string (Experiments.render_table1 (Experiments.table1 ()))
  | "table2" -> print_string (Experiments.render_table2 (Experiments.table2 ()))
  | "fig8" ->
    with_context config (fun c -> print_string (Experiments.render_fig8 (Experiments.fig8 c)))
  | "table3" ->
    with_context config (fun c -> print_string (Experiments.render_table3 (Experiments.table3 c)))
  | "table4" ->
    with_context config (fun c -> print_string (Experiments.render_table4 (Experiments.table4 c)))
  | "table5" ->
    with_context config (fun c -> print_string (Experiments.render_table5 (Experiments.table5 c)))
  | "table6" ->
    with_context config (fun c -> print_string (Experiments.render_table6 (Experiments.table6 c)))
  | "table7" ->
    with_context config (fun c -> print_string (Experiments.render_table7 (Experiments.table7 c)))
  | "fig9" ->
    with_context config (fun c -> print_string (Experiments.render_fig9 (Experiments.fig9 c)))
  | other ->
    Printf.eprintf
      "unknown argument %S (expected \
       all|quick|micro|ablations|analyze|guard|attack|check|resilience|telemetry|fleet|fig4|table1|table2|fig8|table3|table4|table5|table6|table7|fig9)\n"
      other;
    exit 2
